#include "core/optimizer/evaluator.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "core/optimizer/eval_kernels.h"

namespace cloudview {

namespace {

// Large enough never to win a min against any base time, small enough
// that (sentinel - best) * frequency cannot overflow int64.
constexpr int64_t kUnanswerableMs = std::numeric_limits<int64_t>::max() / 2;

// Below this many queries the dispatched kernels' call indirection costs
// more than the sweep itself; an inlined scalar loop (identical integer
// arithmetic, so bit-identical results) wins. Two cache lines of int64.
constexpr size_t kInlineSweepMaxQueries = 16;

}  // namespace

SelectionEvaluator::SelectionEvaluator(
    const CubeLattice& lattice, const Workload& workload,
    const MapReduceSimulator& simulator, const ClusterSpec& cluster,
    const CloudCostModel& cost_model, const DeploymentSpec& deployment,
    std::vector<ViewCandidate> candidates)
    : lattice_(&lattice),
      workload_(workload),
      cost_model_(&cost_model),
      deployment_(deployment),
      candidates_(std::move(candidates)) {
  auto timing = std::make_shared<TimingTable>();
  size_t m = workload.size();
  size_t n = candidates_.size();
  timing->base_time_ms.resize(m);
  timing->frequency.resize(m);
  timing->result_bytes.resize(m);
  for (size_t q = 0; q < m; ++q) {
    CuboidId target = workload.query(q).target;
    timing->frequency[q] =
        static_cast<int64_t>(workload.query(q).frequency);
    timing->base_time_ms[q] =
        simulator.QueryTimeFromFact(target, cluster).millis();
    timing->result_bytes[q] = lattice.EstimateSize(target);
  }
  // Candidate-major fill: one contiguous column per candidate, written
  // in the order the probe kernels will stream it.
  timing->view_time_ms.assign(m * n, kUnanswerableMs);
  for (size_t c = 0; c < n; ++c) {
    int64_t* column = timing->view_time_ms.data() + c * m;
    for (size_t q = 0; q < m; ++q) {
      CuboidId target = workload.query(q).target;
      if (lattice.CanAnswer(candidates_[c].view, target)) {
        column[q] = simulator
                        .QueryTimeFromView(candidates_[c].view, target,
                                           cluster)
                        .millis();
      }
    }
  }
  timing->ranked_candidates.resize(m);
  for (size_t q = 0; q < m; ++q) {
    for (size_t c = 0; c < n; ++c) {
      if (timing->view_time_ms[c * m + q] < timing->base_time_ms[q]) {
        timing->ranked_candidates[q].push_back(static_cast<uint32_t>(c));
      }
    }
    std::stable_sort(timing->ranked_candidates[q].begin(),
                     timing->ranked_candidates[q].end(),
                     [&](uint32_t a, uint32_t b) {
                       return timing->view_time_ms[a * m + q] <
                              timing->view_time_ms[b * m + q];
                     });
  }
  timing_ = std::move(timing);

  // Flatten the base storage timeline once so a storage-memo miss in
  // FastTotalCost never copies a std::map (see base_storage_events_).
  for (const auto& [at, delta] : deployment_.base_storage.CoalescedEvents(
           deployment_.storage_period)) {
    base_storage_events_.push_back(StorageEvent{at, delta});
  }
}

SelectionEvaluator SelectionEvaluator::Clone() const {
  // Shares timing_ by reference; skips the memos entirely (CloneTag).
  return SelectionEvaluator(*this, CloneTag{});
}

Result<SelectionEvaluator> SelectionEvaluator::CloneWithSunkBuilds(
    const std::vector<size_t>& sunk) const {
  SelectionEvaluator clone = Clone();
  for (size_t c : sunk) {
    if (c >= clone.candidates_.size()) {
      return Status::InvalidArgument("sunk candidate index out of range");
    }
    clone.candidates_[c].materialization_time = Duration::Zero();
  }
  return clone;
}

Result<SelectionEvaluator> SelectionEvaluator::CloneWithArchitecture(
    const ArchitectureModel& architecture) const {
  SelectionEvaluator clone = Clone();
  clone.deployment_.architecture = architecture;
  // Re-bill the baseline under the new architecture; this also rejects
  // the single_compute_session conflict (CloudCostModel does).
  CV_ASSIGN_OR_RETURN(clone.baseline_, clone.Evaluate({}));
  return clone;
}

Result<SelectionEvaluator> SelectionEvaluator::Create(
    const CubeLattice& lattice, const Workload& workload,
    const MapReduceSimulator& simulator, const ClusterSpec& cluster,
    const CloudCostModel& cost_model, const DeploymentSpec& deployment,
    std::vector<ViewCandidate> candidates) {
  if (workload.empty()) {
    return Status::InvalidArgument("evaluator needs a non-empty workload");
  }
  SelectionEvaluator evaluator(lattice, workload, simulator, cluster,
                               cost_model, deployment,
                               std::move(candidates));
  CV_ASSIGN_OR_RETURN(evaluator.baseline_, evaluator.Evaluate({}));
  return evaluator;
}

Result<SubsetEvaluation> SelectionEvaluator::Evaluate(
    const std::vector<size_t>& selected) const {
  SubsetEvaluation eval;
  eval.selected = selected;
  std::sort(eval.selected.begin(), eval.selected.end());
  for (size_t i = 0; i < eval.selected.size(); ++i) {
    if (eval.selected[i] >= candidates_.size()) {
      return Status::InvalidArgument("candidate index out of range");
    }
    if (i > 0 && eval.selected[i] == eval.selected[i - 1]) {
      return Status::InvalidArgument("duplicate candidate in subset");
    }
  }

  // Per-query best source among the subset (and base).
  for (size_t q = 0; q < workload_.size(); ++q) {
    const QuerySpec& spec = workload_.query(q);
    Duration best = base_time(q);
    for (size_t c : eval.selected) {
      if (view_time(q, c) < best) best = view_time(q, c);
    }
    eval.workload_input.queries.push_back(QueryCostInput{
        spec.name, best, timing_->result_bytes[q], DataSize::Zero(),
        spec.frequency});
  }

  for (size_t c : eval.selected) {
    const ViewCandidate& candidate = candidates_[c];
    eval.view_input.views.push_back(
        ViewCostInput{candidate.name, candidate.materialization_time,
                      candidate.maintenance_time, candidate.size});
  }

  eval.processing_time = eval.workload_input.TotalProcessingTime();
  eval.makespan =
      eval.processing_time + eval.view_input.TotalMaterializationTime();

  if (eval.selected.empty()) {
    CV_ASSIGN_OR_RETURN(
        eval.cost,
        cost_model_->CostWithoutViews(eval.workload_input, deployment_));
  } else {
    CV_ASSIGN_OR_RETURN(
        eval.cost,
        cost_model_->CostWithViews(eval.workload_input, eval.view_input,
                                   deployment_));
  }
  return eval;
}

Money SelectionEvaluator::ComputeBill(Duration busy) const {
  const PricingModel& pricing = cost_model_->pricing();
  // Granularity rounding collapses the ~2^n distinct raw busy spans a
  // search explores onto a handful of billed durations, so the memo hit
  // rate is near 1 after warm-up and the exact-rational ScaleBy division
  // leaves the probe hot path.
  int64_t key =
      RoundUpToGranularity(busy, pricing.compute_granularity()).millis();
  // One-slot front cache: neighborhood scans and Gray-code walks probe
  // long runs of subsets whose busy span rounds to the same bill.
  if (key == compute_last_key_) {
    return Money::FromMicros(compute_last_micros_);
  }
  int64_t micros;
  if (!compute_cost_memo_.Lookup(key, &micros)) {
    micros = pricing
                 .ComputeCost(deployment_.instance, busy,
                              deployment_.nb_instances)
                 .micros();
    compute_cost_memo_.Insert(key, micros);
  }
  compute_last_key_ = key;
  compute_last_micros_ = micros;
  return Money::FromMicros(micros);
}

Result<Money> SelectionEvaluator::FastTotalCost(
    const SubsetTotals& totals) const {
  // Compute charges (Formula 6): functions of the three time totals only.
  // Mirrors CloudCostModel::CostWithViews — in the single-session mode
  // the per-activity exact charges cancel against the rounding surcharge,
  // so the compute total is the rounded bill of the whole busy span.
  const ArchitectureModel& arch = deployment_.architecture;
  Money compute;
  if (deployment_.single_compute_session) {
    // single_compute_session never pairs with a non-identity
    // architecture: Create()/CloneWithArchitecture() reject the combo
    // through CloudCostModel before a state can probe it.
    Duration busy = totals.processing + totals.materialization +
                    totals.maintenance * deployment_.maintenance_cycles;
    compute = ComputeBill(busy);
  } else if (arch.is_identity()) {
    compute = ComputeBill(totals.processing);
    if (!totals.materialization.is_zero()) {
      compute += ComputeBill(totals.materialization);
    }
    if (deployment_.maintenance_cycles != 0 &&
        !totals.maintenance.is_zero()) {
      compute += ComputeBill(totals.maintenance) *
                 deployment_.maintenance_cycles;
    }
  } else {
    // The ApplyArchitecture mirror (cloud_cost_model.cc): identical
    // ScaleBy chains on the memoized per-activity bills, cycles
    // multiplied in BEFORE the fanout scaling — the order the exact
    // path uses, and rational ScaleBy floors, so order matters for the
    // bit-equality the property suite pins. ComputeBill(0) == 0
    // exactly, so the zero-total skips below change nothing.
    Money processing = ComputeBill(totals.processing)
                           .ScaleBy(arch.compute_num, arch.compute_den);
    Money materialization;
    if (!totals.materialization.is_zero()) {
      materialization =
          ComputeBill(totals.materialization)
              .ScaleBy(arch.fanout_num, arch.fanout_den);
    }
    Money maintenance;
    if (deployment_.maintenance_cycles != 0 &&
        !totals.maintenance.is_zero()) {
      maintenance = (ComputeBill(totals.maintenance) *
                     deployment_.maintenance_cycles)
                        .ScaleBy(arch.fanout_num, arch.fanout_den);
    }
    compute = processing + materialization + maintenance +
              (materialization + maintenance)
                  .ScaleBy(arch.interruption_num, arch.interruption_den);
  }

  // Storage (Formula 5): base timeline plus the duplicated bytes from
  // month 0, memoized per distinct byte total.
  Money storage;
  int64_t key = totals.view_bytes.bytes();
  int64_t micros;
  if (storage_cost_memo_.Lookup(key, &micros)) {
    storage = Money::FromMicros(micros);
  } else {
    // Replay StorageTimeline::Intervals() over the pre-flattened base
    // events with the subset's bytes folded in at month 0: identical
    // walk, identical StorageCost calls in the same order, but no
    // per-probe timeline copy or interval vector.
    Months end = deployment_.storage_period;
    if (end.is_negative()) {
      return Status::InvalidArgument("storage period end before month 0");
    }
    Money sum = Money::Zero();
    DataSize size = totals.view_bytes;
    Months cursor = Months::Zero();
    for (const StorageEvent& event : base_storage_events_) {
      if (event.at > cursor) {
        if (!size.is_zero()) {
          sum += cost_model_->storage().ConstantCost(size,
                                                     event.at - cursor);
        }
        cursor = event.at;
      }
      size += event.delta;
      if (size.is_negative()) {
        return Status::FailedPrecondition(
            "storage timeline deletes more data than it holds");
      }
    }
    if (cursor < end && !size.is_zero()) {
      sum += cost_model_->storage().ConstantCost(size, end - cursor);
    }
    storage = sum;
    if (!arch.is_identity()) {
      // Architecture terms that are pure functions of the byte total —
      // replica/durability storage scaling and the inter-AZ egress on
      // replicated writes — fold into the memoized value, so the probe
      // hot path stays allocation-free after warm-up. Same chains as
      // ApplyArchitecture.
      storage = storage.ScaleBy(arch.storage_num, arch.storage_den);
      if (arch.cross_az_copies > 0) {
        DataSize written = ReplicatedWriteBytes(
            deployment_.ingress.initial_dataset, totals.view_bytes,
            deployment_.maintenance_cycles);
        storage += cost_model_->pricing().InterAzCost(DataSize::FromBytes(
            written.bytes() * arch.cross_az_copies));
      }
    }
    storage_cost_memo_.Insert(key, storage.micros());
  }

  // Transfer (Section 4.1) and request charges: views never leave the
  // cloud and the workload issues the same API calls, so both are the
  // baseline's, whatever the subset.
  return compute + storage + transfer_cost() + request_cost();
}

Result<Money> SelectionEvaluator::FastTotalCost(
    const SubsetState& state) const {
  CV_CHECK(&state.evaluator() == this) << "state built on another evaluator";
  return FastTotalCost(state.totals());
}

Duration SelectionEvaluator::StandaloneProcessingSaving(size_t c) const {
  CV_CHECK(c < candidates_.size()) << "candidate index out of range";
  const int64_t* column = view_time_ms_of(c);
  const int64_t* base = base_time_ms_data();
  const int64_t* freq = frequency_data();
  int64_t saved_ms = 0;
  for (size_t q = 0; q < workload_.size(); ++q) {
    if (column[q] < base[q]) saved_ms += (base[q] - column[q]) * freq[q];
  }
  return Duration::FromMillis(saved_ms);
}

Result<Money> SelectionEvaluator::StandaloneCostDelta(size_t c) const {
  if (c >= candidates_.size()) {
    return Status::InvalidArgument("candidate index out of range");
  }
  CV_ASSIGN_OR_RETURN(SubsetEvaluation solo, Evaluate({c}));
  return solo.cost.total() - baseline_.cost.total();
}

// ---------------------------------------------------------------------------
// SubsetState: incremental argmin + running totals, SoA over flat
// millisecond arrays so Add/Peek reduce to the eval_kernels sweeps.

SubsetState::SubsetState(const SelectionEvaluator& evaluator)
    : evaluator_(&evaluator),
      member_(evaluator.num_candidates(), 0),
      best_view_(evaluator.num_queries(), kFromBase),
      best_time_ms_(evaluator.num_queries()) {
  const int64_t* base = evaluator.base_time_ms_data();
  const int64_t* freq = evaluator.frequency_data();
  int64_t processing_ms = 0;
  for (size_t q = 0; q < best_time_ms_.size(); ++q) {
    best_time_ms_[q] = base[q];
    processing_ms += base[q] * freq[q];
  }
  processing_ = Duration::FromMillis(processing_ms);
}

void SubsetState::Reset() {
  std::fill(member_.begin(), member_.end(), uint8_t{0});
  count_ = 0;
  hash_ = 0;
  materialization_ = Duration::Zero();
  maintenance_ = Duration::Zero();
  view_bytes_ = DataSize::Zero();
  const int64_t* base = evaluator_->base_time_ms_data();
  const int64_t* freq = evaluator_->frequency_data();
  int64_t processing_ms = 0;
  for (size_t q = 0; q < best_time_ms_.size(); ++q) {
    best_view_[q] = kFromBase;
    best_time_ms_[q] = base[q];
    processing_ms += base[q] * freq[q];
  }
  processing_ = Duration::FromMillis(processing_ms);
}

void SubsetState::Add(size_t c) {
  CV_CHECK(c < member_.size()) << "candidate index out of range";
  CV_CHECK(!member_[c]) << "candidate " << c << " already selected";
  member_[c] = 1;
  ++count_;
  hash_ ^= CandidateToken(c);

  const ViewCandidate& candidate = evaluator_->candidates()[c];
  materialization_ += candidate.materialization_time;
  maintenance_ += candidate.maintenance_time;
  view_bytes_ += candidate.size;

  const int64_t* column = evaluator_->view_time_ms_of(c);
  const int64_t* freq = evaluator_->frequency_data();
  size_t m = best_time_ms_.size();
  int64_t delta_ms = 0;
  if (m <= kInlineSweepMaxQueries) {
    int64_t* best = best_time_ms_.data();
    uint32_t* view = best_view_.data();
    for (size_t q = 0; q < m; ++q) {
      if (column[q] < best[q]) {
        delta_ms += (column[q] - best[q]) * freq[q];
        best[q] = column[q];
        view[q] = static_cast<uint32_t>(c);
      }
    }
  } else {
    delta_ms = eval_kernels::AddSweep(column, best_time_ms_.data(),
                                      best_view_.data(), freq, m,
                                      static_cast<uint32_t>(c));
  }
  processing_ += Duration::FromMillis(delta_ms);
}

void SubsetState::Remove(size_t c) {
  CV_CHECK(c < member_.size()) << "candidate index out of range";
  CV_CHECK(member_[c]) << "candidate " << c << " not selected";
  member_[c] = 0;
  --count_;
  hash_ ^= CandidateToken(c);

  const ViewCandidate& candidate = evaluator_->candidates()[c];
  materialization_ -= candidate.materialization_time;
  maintenance_ -= candidate.maintenance_time;
  view_bytes_ -= candidate.size;

  // Only queries that lost their argmin need repair. The replacement is
  // the first surviving member on the query's precomputed ranking
  // (ascending view_time), or the base table when none survives — the
  // same minimum Evaluate()'s strict-min pass finds, located in
  // expected O(1) instead of a member scan.
  const int64_t* base = evaluator_->base_time_ms_data();
  const int64_t* freq = evaluator_->frequency_data();
  int64_t delta_ms = 0;
  size_t m = best_time_ms_.size();
  for (size_t q = 0; q < m; ++q) {
    if (best_view_[q] != c) continue;
    int64_t best = base[q];
    uint32_t argmin = kFromBase;
    for (uint32_t ranked : evaluator_->ranked_candidates(q)) {
      if (member_[ranked]) {
        best = evaluator_->view_time(q, ranked).millis();
        argmin = ranked;
        break;
      }
    }
    delta_ms += (best - best_time_ms_[q]) * freq[q];
    best_time_ms_[q] = best;
    best_view_[q] = argmin;
  }
  processing_ += Duration::FromMillis(delta_ms);
}

SubsetTotals SubsetState::PeekToggleInto(size_t c) const {
  SubsetTotals totals{processing_, materialization_, maintenance_,
                      view_bytes_, hash_ ^ CandidateToken(c)};
  const ViewCandidate& candidate = evaluator_->candidates()[c];
  if (!member_[c]) {
    totals.materialization += candidate.materialization_time;
    totals.maintenance += candidate.maintenance_time;
    totals.view_bytes += candidate.size;
    const int64_t* column = evaluator_->view_time_ms_of(c);
    const int64_t* best = best_time_ms_.data();
    const int64_t* freq = evaluator_->frequency_data();
    size_t m = best_time_ms_.size();
    int64_t delta_ms = 0;
    if (m <= kInlineSweepMaxQueries) {
      for (size_t q = 0; q < m; ++q) {
        if (column[q] < best[q]) {
          delta_ms += (column[q] - best[q]) * freq[q];
        }
      }
    } else {
      delta_ms = eval_kernels::PeekAddDelta(column, best, freq, m);
    }
    totals.processing += Duration::FromMillis(delta_ms);
  } else {
    totals.materialization -= candidate.materialization_time;
    totals.maintenance -= candidate.maintenance_time;
    totals.view_bytes -= candidate.size;
    const int64_t* base = evaluator_->base_time_ms_data();
    const int64_t* freq = evaluator_->frequency_data();
    int64_t delta_ms = 0;
    for (size_t q = 0; q < best_time_ms_.size(); ++q) {
      if (best_view_[q] != c) continue;
      int64_t best = base[q];
      for (uint32_t ranked : evaluator_->ranked_candidates(q)) {
        if (ranked != c && member_[ranked]) {
          best = evaluator_->view_time(q, ranked).millis();
          break;
        }
      }
      delta_ms += (best - best_time_ms_[q]) * freq[q];
    }
    totals.processing += Duration::FromMillis(delta_ms);
  }
  return totals;
}

SubsetTotals SubsetState::PeekToggle(size_t c) const {
  CV_CHECK(c < member_.size()) << "candidate index out of range";
  return PeekToggleInto(c);
}

void SubsetState::PeekToggleBatch(std::span<const size_t> candidates,
                                  std::span<SubsetTotals> out) const {
  CV_CHECK(out.size() >= candidates.size())
      << "PeekToggleBatch output span too short";
  for (size_t i = 0; i < candidates.size(); ++i) {
    size_t c = candidates[i];
    CV_CHECK(c < member_.size()) << "candidate index out of range";
    out[i] = PeekToggleInto(c);
  }
}

std::vector<size_t> SubsetState::Selected() const {
  std::vector<size_t> out;
  out.reserve(count_);
  for (size_t c = 0; c < member_.size(); ++c) {
    if (member_[c]) out.push_back(c);
  }
  return out;
}

}  // namespace cloudview
