#include "core/optimizer/evaluator.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace cloudview {

namespace {

constexpr Duration kUnanswerable =
    Duration::FromMillis(std::numeric_limits<int64_t>::max() / 2);

}  // namespace

SelectionEvaluator::SelectionEvaluator(
    const CubeLattice& lattice, const Workload& workload,
    const MapReduceSimulator& simulator, const ClusterSpec& cluster,
    const CloudCostModel& cost_model, const DeploymentSpec& deployment,
    std::vector<ViewCandidate> candidates)
    : lattice_(&lattice),
      workload_(workload),
      cost_model_(&cost_model),
      deployment_(deployment),
      candidates_(std::move(candidates)) {
  auto timing = std::make_shared<TimingTable>();
  size_t m = workload.size();
  timing->base_time.resize(m);
  timing->frequency.resize(m);
  for (size_t q = 0; q < m; ++q) {
    timing->frequency[q] =
        static_cast<int64_t>(workload.query(q).frequency);
  }
  timing->result_bytes.resize(m);
  timing->view_time.assign(
      m, std::vector<Duration>(candidates_.size(), kUnanswerable));
  for (size_t q = 0; q < m; ++q) {
    CuboidId target = workload.query(q).target;
    timing->base_time[q] = simulator.QueryTimeFromFact(target, cluster);
    timing->result_bytes[q] = lattice.EstimateSize(target);
    for (size_t c = 0; c < candidates_.size(); ++c) {
      if (lattice.CanAnswer(candidates_[c].view, target)) {
        timing->view_time[q][c] = simulator.QueryTimeFromView(
            candidates_[c].view, target, cluster);
      }
    }
  }
  timing->view_time_by_candidate.resize(m * candidates_.size(),
                                        kUnanswerable);
  for (size_t c = 0; c < candidates_.size(); ++c) {
    for (size_t q = 0; q < m; ++q) {
      timing->view_time_by_candidate[c * m + q] = timing->view_time[q][c];
    }
  }
  timing->ranked_candidates.resize(m);
  for (size_t q = 0; q < m; ++q) {
    for (size_t c = 0; c < candidates_.size(); ++c) {
      if (timing->view_time[q][c] < timing->base_time[q]) {
        timing->ranked_candidates[q].push_back(static_cast<uint32_t>(c));
      }
    }
    std::stable_sort(timing->ranked_candidates[q].begin(),
                     timing->ranked_candidates[q].end(),
                     [&](uint32_t a, uint32_t b) {
                       return timing->view_time[q][a] <
                              timing->view_time[q][b];
                     });
  }
  timing_ = std::move(timing);
}

SelectionEvaluator SelectionEvaluator::Clone() const {
  // Shares timing_ by reference; skips the memo entirely (CloneTag).
  return SelectionEvaluator(*this, CloneTag{});
}

Result<SelectionEvaluator> SelectionEvaluator::CloneWithSunkBuilds(
    const std::vector<size_t>& sunk) const {
  SelectionEvaluator clone = Clone();
  for (size_t c : sunk) {
    if (c >= clone.candidates_.size()) {
      return Status::InvalidArgument("sunk candidate index out of range");
    }
    clone.candidates_[c].materialization_time = Duration::Zero();
  }
  return clone;
}

Result<SelectionEvaluator> SelectionEvaluator::Create(
    const CubeLattice& lattice, const Workload& workload,
    const MapReduceSimulator& simulator, const ClusterSpec& cluster,
    const CloudCostModel& cost_model, const DeploymentSpec& deployment,
    std::vector<ViewCandidate> candidates) {
  if (workload.empty()) {
    return Status::InvalidArgument("evaluator needs a non-empty workload");
  }
  SelectionEvaluator evaluator(lattice, workload, simulator, cluster,
                               cost_model, deployment,
                               std::move(candidates));
  CV_ASSIGN_OR_RETURN(evaluator.baseline_, evaluator.Evaluate({}));
  return evaluator;
}

Result<SubsetEvaluation> SelectionEvaluator::Evaluate(
    const std::vector<size_t>& selected) const {
  SubsetEvaluation eval;
  eval.selected = selected;
  std::sort(eval.selected.begin(), eval.selected.end());
  for (size_t i = 0; i < eval.selected.size(); ++i) {
    if (eval.selected[i] >= candidates_.size()) {
      return Status::InvalidArgument("candidate index out of range");
    }
    if (i > 0 && eval.selected[i] == eval.selected[i - 1]) {
      return Status::InvalidArgument("duplicate candidate in subset");
    }
  }

  // Per-query best source among the subset (and base).
  for (size_t q = 0; q < workload_.size(); ++q) {
    const QuerySpec& spec = workload_.query(q);
    Duration best = timing_->base_time[q];
    for (size_t c : eval.selected) {
      if (timing_->view_time[q][c] < best) best = timing_->view_time[q][c];
    }
    eval.workload_input.queries.push_back(QueryCostInput{
        spec.name, best, timing_->result_bytes[q], DataSize::Zero(),
        spec.frequency});
  }

  for (size_t c : eval.selected) {
    const ViewCandidate& candidate = candidates_[c];
    eval.view_input.views.push_back(
        ViewCostInput{candidate.name, candidate.materialization_time,
                      candidate.maintenance_time, candidate.size});
  }

  eval.processing_time = eval.workload_input.TotalProcessingTime();
  eval.makespan =
      eval.processing_time + eval.view_input.TotalMaterializationTime();

  if (eval.selected.empty()) {
    CV_ASSIGN_OR_RETURN(
        eval.cost,
        cost_model_->CostWithoutViews(eval.workload_input, deployment_));
  } else {
    CV_ASSIGN_OR_RETURN(
        eval.cost,
        cost_model_->CostWithViews(eval.workload_input, eval.view_input,
                                   deployment_));
  }
  return eval;
}

Result<Money> SelectionEvaluator::FastTotalCost(
    const SubsetTotals& totals) const {
  const PricingModel& pricing = cost_model_->pricing();

  // Compute charges (Formula 6): functions of the three time totals only.
  // Mirrors CloudCostModel::CostWithViews — in the single-session mode
  // the per-activity exact charges cancel against the rounding surcharge,
  // so the compute total is the rounded bill of the whole busy span.
  Money compute;
  if (deployment_.single_compute_session) {
    Duration busy = totals.processing + totals.materialization +
                    totals.maintenance * deployment_.maintenance_cycles;
    compute = pricing.ComputeCost(deployment_.instance, busy,
                                  deployment_.nb_instances);
  } else {
    compute = pricing.ComputeCost(deployment_.instance, totals.processing,
                                  deployment_.nb_instances);
    if (!totals.materialization.is_zero()) {
      compute += pricing.ComputeCost(deployment_.instance,
                                     totals.materialization,
                                     deployment_.nb_instances);
    }
    if (deployment_.maintenance_cycles != 0 &&
        !totals.maintenance.is_zero()) {
      compute += pricing.ComputeCost(deployment_.instance,
                                     totals.maintenance,
                                     deployment_.nb_instances) *
                 deployment_.maintenance_cycles;
    }
  }

  // Storage (Formula 5): base timeline plus the duplicated bytes from
  // month 0, memoized per distinct byte total.
  Money storage;
  int64_t key = totals.view_bytes.bytes();
  auto memo = storage_cost_memo_.find(key);
  if (memo != storage_cost_memo_.end()) {
    storage = memo->second;
  } else {
    StorageTimeline timeline = deployment_.base_storage;
    if (key != 0) {
      CV_RETURN_IF_ERROR(
          timeline.AddDelta(Months::Zero(), totals.view_bytes));
    }
    CV_ASSIGN_OR_RETURN(
        storage,
        cost_model_->storage().Cost(timeline, deployment_.storage_period));
    // Bounded: exhaustive enumeration can produce ~2^n distinct byte
    // totals; past the cap, later totals just recompute.
    if (storage_cost_memo_.size() < (1u << 16)) {
      storage_cost_memo_.emplace(key, storage);
    }
  }

  // Transfer (Section 4.1) and request charges: views never leave the
  // cloud and the workload issues the same API calls, so both are the
  // baseline's, whatever the subset.
  return compute + storage + transfer_cost() + request_cost();
}

Result<Money> SelectionEvaluator::FastTotalCost(
    const SubsetState& state) const {
  CV_CHECK(&state.evaluator() == this) << "state built on another evaluator";
  return FastTotalCost(state.totals());
}

Duration SelectionEvaluator::StandaloneProcessingSaving(size_t c) const {
  CV_CHECK(c < candidates_.size()) << "candidate index out of range";
  Duration saved = Duration::Zero();
  for (size_t q = 0; q < workload_.size(); ++q) {
    if (timing_->view_time[q][c] < timing_->base_time[q]) {
      saved += (timing_->base_time[q] - timing_->view_time[q][c]) *
               static_cast<int64_t>(workload_.query(q).frequency);
    }
  }
  return saved;
}

Result<Money> SelectionEvaluator::StandaloneCostDelta(size_t c) const {
  if (c >= candidates_.size()) {
    return Status::InvalidArgument("candidate index out of range");
  }
  CV_ASSIGN_OR_RETURN(SubsetEvaluation solo, Evaluate({c}));
  return solo.cost.total() - baseline_.cost.total();
}

// ---------------------------------------------------------------------------
// SubsetState: incremental argmin + running totals.

SubsetState::SubsetState(const SelectionEvaluator& evaluator)
    : evaluator_(&evaluator),
      member_(evaluator.num_candidates(), 0),
      best_view_(evaluator.num_queries(), kFromBase),
      best_time_(evaluator.num_queries()) {
  for (size_t q = 0; q < evaluator.num_queries(); ++q) {
    best_time_[q] = evaluator.base_time(q);
    processing_ += best_time_[q] * evaluator.frequency(q);
  }
}

void SubsetState::Add(size_t c) {
  CV_CHECK(c < member_.size()) << "candidate index out of range";
  CV_CHECK(!member_[c]) << "candidate " << c << " already selected";
  member_[c] = 1;
  ++count_;
  hash_ ^= CandidateToken(c);

  const ViewCandidate& candidate = evaluator_->candidates()[c];
  materialization_ += candidate.materialization_time;
  maintenance_ += candidate.maintenance_time;
  view_bytes_ += candidate.size;

  const Duration* column = evaluator_->view_time_of(c);
  for (size_t q = 0; q < best_time_.size(); ++q) {
    Duration t = column[q];
    if (t < best_time_[q]) {
      processing_ += (t - best_time_[q]) * evaluator_->frequency(q);
      best_time_[q] = t;
      best_view_[q] = c;
    }
  }
}

void SubsetState::Remove(size_t c) {
  CV_CHECK(c < member_.size()) << "candidate index out of range";
  CV_CHECK(member_[c]) << "candidate " << c << " not selected";
  member_[c] = 0;
  --count_;
  hash_ ^= CandidateToken(c);

  const ViewCandidate& candidate = evaluator_->candidates()[c];
  materialization_ -= candidate.materialization_time;
  maintenance_ -= candidate.maintenance_time;
  view_bytes_ -= candidate.size;

  // Only queries that lost their argmin need repair. The replacement is
  // the first surviving member on the query's precomputed ranking
  // (ascending view_time), or the base table when none survives — the
  // same minimum Evaluate()'s strict-min pass finds, located in
  // expected O(1) instead of a member scan.
  for (size_t q = 0; q < best_time_.size(); ++q) {
    if (best_view_[q] != c) continue;
    Duration best = evaluator_->base_time(q);
    size_t argmin = kFromBase;
    for (uint32_t ranked : evaluator_->ranked_candidates(q)) {
      if (member_[ranked]) {
        best = evaluator_->view_time(q, ranked);
        argmin = ranked;
        break;
      }
    }
    processing_ += (best - best_time_[q]) * evaluator_->frequency(q);
    best_time_[q] = best;
    best_view_[q] = argmin;
  }
}

SubsetTotals SubsetState::PeekToggle(size_t c) const {
  CV_CHECK(c < member_.size()) << "candidate index out of range";
  SubsetTotals totals{processing_, materialization_, maintenance_,
                      view_bytes_, hash_ ^ CandidateToken(c)};
  const ViewCandidate& candidate = evaluator_->candidates()[c];
  if (!member_[c]) {
    totals.materialization += candidate.materialization_time;
    totals.maintenance += candidate.maintenance_time;
    totals.view_bytes += candidate.size;
    const Duration* column = evaluator_->view_time_of(c);
    for (size_t q = 0; q < best_time_.size(); ++q) {
      if (column[q] < best_time_[q]) {
        totals.processing +=
            (column[q] - best_time_[q]) * evaluator_->frequency(q);
      }
    }
  } else {
    totals.materialization -= candidate.materialization_time;
    totals.maintenance -= candidate.maintenance_time;
    totals.view_bytes -= candidate.size;
    for (size_t q = 0; q < best_time_.size(); ++q) {
      if (best_view_[q] != c) continue;
      Duration best = evaluator_->base_time(q);
      for (uint32_t ranked : evaluator_->ranked_candidates(q)) {
        if (ranked != c && member_[ranked]) {
          best = evaluator_->view_time(q, ranked);
          break;
        }
      }
      totals.processing +=
          (best - best_time_[q]) * evaluator_->frequency(q);
    }
  }
  return totals;
}

std::vector<size_t> SubsetState::Selected() const {
  std::vector<size_t> out;
  out.reserve(count_);
  for (size_t c = 0; c < member_.size(); ++c) {
    if (member_[c]) out.push_back(c);
  }
  return out;
}

}  // namespace cloudview
