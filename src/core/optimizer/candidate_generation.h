// Candidate generation: builds Vcand from the lattice and the workload.
//
// The paper delegates this to "an existing algorithm such as [8]"
// (Baril & Bellahsene's cost-based selection). We implement the standard
// lattice approach in that spirit: every cuboid that can answer at least
// one workload query is scored with its Harinarayan-Rajaraman-Ullman
// benefit (time saved across the workload if materialized alone), and
// the top candidates under a size cap are kept.

#pragma once

#include <vector>

#include "catalog/lattice.h"
#include "common/result.h"
#include "core/optimizer/view_candidate.h"
#include "engine/cluster.h"
#include "workload/workload.h"

namespace cloudview {

/// \brief Knobs for candidate generation.
struct CandidateGenOptions {
  /// Keep at most this many candidates (ranked by HRU benefit).
  size_t max_candidates = 32;
  /// Skip cuboids larger than this fraction of the base table (a view
  /// nearly as big as the fact table saves nothing).
  double max_size_fraction = 0.5;
  /// Skip cuboids whose estimated row count exceeds this fraction of the
  /// fact rows. External candidate selectors (the paper defers to [8])
  /// discard near-fact-granularity views that barely aggregate; the
  /// Section 6 reproduction uses 0.05 (see EXPERIMENTS.md).
  double max_rows_fraction = 1.0;
  /// Logical delta bytes per maintenance cycle (drives t_maintenance).
  DataSize maintenance_delta = DataSize::Zero();
  /// Restrict candidates to the workload's own cuboids when true
  /// (exact-match views only; no shared ancestors).
  bool queries_only = false;
};

/// \brief Generates Vcand for `workload` on `cluster`. Candidate
/// materialization times assume views are built from the base table.
/// Never returns the base cuboid itself.
Result<std::vector<ViewCandidate>> GenerateCandidates(
    const CubeLattice& lattice, const Workload& workload,
    const MapReduceSimulator& simulator, const ClusterSpec& cluster,
    const CandidateGenOptions& options);

}  // namespace cloudview

