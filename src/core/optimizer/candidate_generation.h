// Candidate generation: builds Vcand from the lattice and the workload.
//
// The paper delegates this to "an existing algorithm such as [8]"
// (Baril & Bellahsene's cost-based selection). We implement the standard
// lattice approach in that spirit: every cuboid that can answer at least
// one workload query is scored with its Harinarayan-Rajaraman-Ullman
// benefit (time saved across the workload if materialized alone), and
// the top candidates under a size cap are kept.

#pragma once

#include <vector>

#include "catalog/lattice.h"
#include "common/result.h"
#include "core/optimizer/view_candidate.h"
#include "engine/cluster.h"
#include "workload/workload.h"

namespace cloudview {

/// \brief Knobs for candidate generation.
struct CandidateGenOptions {
  /// Keep at most this many candidates (ranked by HRU benefit).
  size_t max_candidates = 32;
  /// Skip cuboids larger than this fraction of the base table (a view
  /// nearly as big as the fact table saves nothing).
  double max_size_fraction = 0.5;
  /// Skip cuboids whose estimated row count exceeds this fraction of the
  /// fact rows. External candidate selectors (the paper defers to [8])
  /// discard near-fact-granularity views that barely aggregate; the
  /// Section 6 reproduction uses 0.05 (see EXPERIMENTS.md).
  double max_rows_fraction = 1.0;
  /// Logical delta bytes per maintenance cycle (drives t_maintenance).
  DataSize maintenance_delta = DataSize::Zero();
  /// Restrict candidates to the workload's own cuboids when true
  /// (exact-match views only; no shared ancestors).
  bool queries_only = false;

  // --- Near-duplicate clustering (DESIGN.md §13.5) ---------------------
  // Large lattices rank many cuboids that answer (nearly) the same
  // queries at similar sizes; keeping them all burns the max_candidates
  // budget on redundancy. The clustering pass — in the spirit of
  // Aouiche et al.'s query-clustering selection (arXiv cs/0703114) —
  // walks the benefit-ranked roster and folds a candidate into an
  // already-kept representative when their query-coverage sets are
  // near-identical and their sizes comparable, so the kept roster
  // spends its budget on genuinely distinct views. Deterministic: scan
  // order is the total benefit order, the representative is always the
  // best-benefit member.

  /// Jaccard similarity of two candidates' query-coverage sets at or
  /// above which they cluster (1.0 = only exact same coverage merges).
  /// 0 (the default) disables the pass — pinned rosters stay
  /// byte-identical.
  double cluster_similarity = 0.0;
  /// Candidates only cluster when their sizes are within this factor
  /// (max/min <= ratio): equal coverage at wildly different sizes is a
  /// real tradeoff, not a duplicate.
  double cluster_size_ratio = 4.0;
};

/// \brief Generates Vcand for `workload` on `cluster`. Candidate
/// materialization times assume views are built from the base table.
/// Never returns the base cuboid itself.
Result<std::vector<ViewCandidate>> GenerateCandidates(
    const CubeLattice& lattice, const Workload& workload,
    const MapReduceSimulator& simulator, const ClusterSpec& cluster,
    const CandidateGenOptions& options);

}  // namespace cloudview

