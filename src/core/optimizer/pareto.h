// The multi-objective seam (DESIGN.md §10): instead of collapsing a
// subset to one lexicographic scalar, score it on the three axes a
// cloud tenant actually trades off —
//
//   MultiScore   — (monthly cost, time metric, storage footprint); all
//                  three integer-exact, so dominance checks and frontier
//                  membership never depend on float rounding.
//   ParetoPoint  — a MultiScore plus the subset that achieved it and the
//                  strategy that found it.
//   ParetoFront  — insert-if-non-dominated container with relative
//                  epsilon dedup and a deterministic total order, the
//                  structure "pareto-sweep"/"pareto-genetic" return and
//                  CloudScenario::SolveFrontier exposes.
//
// This header is deliberately free of evaluator/solver dependencies so
// both the spec layer (selector.h) and the strategies can use it.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "common/data_size.h"
#include "common/duration.h"
#include "common/money.h"

namespace cloudview {

/// \brief One subset's position in the objective space. Lower is
/// better on every axis.
struct MultiScore {
  /// Total deployment cost normalized to one month of the billed
  /// storage period (what a tenant's invoice trends on).
  Money monthly_cost;
  /// The scenario's time metric: workload makespan when the spec counts
  /// one-time materialization, pure processing time otherwise.
  Duration time;
  /// Duplicated bytes stored for the selected views.
  DataSize storage;
  /// Expected system unavailability of the deployment architecture the
  /// subset is billed under, in parts per million
  /// (catalog/architecture.h). Zero for the legacy three-axis scoring —
  /// a zero axis never changes dominance among same-architecture
  /// points, so existing frontiers are unaffected; the joint solver
  /// fills it so a cheap spot fleet and a durable multi-AZ fleet can
  /// coexist on one frontier.
  int64_t unavailability_ppm = 0;

  /// \brief Strict Pareto dominance: no worse on every axis, strictly
  /// better on at least one.
  bool Dominates(const MultiScore& other) const {
    bool no_worse = monthly_cost <= other.monthly_cost &&
                    time <= other.time && storage <= other.storage &&
                    unavailability_ppm <= other.unavailability_ppm;
    bool better = monthly_cost < other.monthly_cost ||
                  time < other.time || storage < other.storage ||
                  unavailability_ppm < other.unavailability_ppm;
    return no_worse && better;
  }

  /// \brief Dominates-or-equals (weak dominance).
  bool WeaklyDominates(const MultiScore& other) const {
    return monthly_cost <= other.monthly_cost && time <= other.time &&
           storage <= other.storage &&
           unavailability_ppm <= other.unavailability_ppm;
  }

  /// \brief Per-axis relative closeness: |a-b| <= eps * max(|a|, |b|)
  /// on all axes. Used by the frontier's dedup, so points that
  /// differ by rounding noise do not bloat it.
  bool WithinEpsilon(const MultiScore& other, double epsilon) const;

  /// \brief Deterministic total order (cost, time, storage,
  /// unavailability) — the frontier's presentation order.
  auto AsTuple() const {
    return std::make_tuple(monthly_cost.micros(), time.millis(),
                           storage.bytes(), unavailability_ppm);
  }

  friend bool operator==(const MultiScore& a, const MultiScore& b) {
    return a.AsTuple() == b.AsTuple();
  }
  friend bool operator!=(const MultiScore& a, const MultiScore& b) {
    return !(a == b);
  }
};

/// \brief A frontier member: where it sits, which subset realizes it,
/// and which strategy (or weight vector) produced it.
struct ParetoPoint {
  MultiScore score;
  /// Candidate indices, ascending.
  std::vector<size_t> selected;
  /// Provenance label, e.g. "knapsack-dp" or "greedy a=0.3".
  std::string origin;
  /// Deployment architecture the point is billed under; empty for the
  /// legacy single-architecture frontiers.
  std::string architecture;
};

/// \brief The set of mutually non-dominated points seen so far.
///
/// Insert() keeps the invariant: a new point dominated by (or
/// epsilon-indistinguishable from) a member is rejected; members the new
/// point dominates are evicted. Points are held sorted by
/// MultiScore::AsTuple() (ties broken by subset, then origin), so the
/// frontier's contents and order are a pure function of the insertion
/// *sequence* — parallel producers must insert in a fixed order (the
/// sweep reduces task results by index before inserting; DESIGN.md §10).
class ParetoFront {
 public:
  /// \brief `epsilon` is the relative dedup tolerance; 0 dedups only
  /// exact score ties.
  explicit ParetoFront(double epsilon = 0.0) : epsilon_(epsilon) {}

  /// \brief Adds `point` if no member weakly dominates it (or sits
  /// within epsilon of it), evicting members it dominates. Returns
  /// whether the point was kept.
  bool Insert(ParetoPoint point);

  /// \brief Whether some member weakly dominates `score` (within the
  /// epsilon tolerance) — i.e. the frontier already accounts for it.
  bool Covers(const MultiScore& score) const;

  /// \brief Members, sorted by (cost, time, storage).
  const std::vector<ParetoPoint>& points() const { return points_; }
  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  double epsilon() const { return epsilon_; }

 private:
  double epsilon_;
  std::vector<ParetoPoint> points_;
};

}  // namespace cloudview

