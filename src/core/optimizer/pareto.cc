#include "core/optimizer/pareto.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <utility>

namespace cloudview {

namespace {

/// |a-b| <= eps * max(|a|, |b|), exact at eps == 0.
bool CloseRel(int64_t a, int64_t b, double epsilon) {
  if (a == b) return true;
  if (epsilon <= 0.0) return false;
  double magnitude = std::max(std::abs(static_cast<double>(a)),
                              std::abs(static_cast<double>(b)));
  return std::abs(static_cast<double>(a) - static_cast<double>(b)) <=
         epsilon * magnitude;
}

/// Presentation (and tie-break) order of frontier members.
bool PointLess(const ParetoPoint& a, const ParetoPoint& b) {
  auto ka = a.score.AsTuple();
  auto kb = b.score.AsTuple();
  if (ka != kb) return ka < kb;
  if (a.selected != b.selected) return a.selected < b.selected;
  if (a.origin != b.origin) return a.origin < b.origin;
  return a.architecture < b.architecture;
}

}  // namespace

bool MultiScore::WithinEpsilon(const MultiScore& other,
                               double epsilon) const {
  return CloseRel(monthly_cost.micros(), other.monthly_cost.micros(),
                  epsilon) &&
         CloseRel(time.millis(), other.time.millis(), epsilon) &&
         CloseRel(storage.bytes(), other.storage.bytes(), epsilon) &&
         CloseRel(unavailability_ppm, other.unavailability_ppm, epsilon);
}

bool ParetoFront::Insert(ParetoPoint point) {
  for (const ParetoPoint& member : points_) {
    // The incumbent wins ties and epsilon-near duplicates: with a fixed
    // insertion order, the survivor never depends on thread count.
    if (member.score.WeaklyDominates(point.score) ||
        member.score.WithinEpsilon(point.score, epsilon_)) {
      return false;
    }
  }
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [&](const ParetoPoint& member) {
                                 return point.score.Dominates(
                                     member.score);
                               }),
                points_.end());
  points_.insert(std::upper_bound(points_.begin(), points_.end(), point,
                                  PointLess),
                 std::move(point));
  return true;
}

bool ParetoFront::Covers(const MultiScore& score) const {
  for (const ParetoPoint& member : points_) {
    if (member.score.WeaklyDominates(score) ||
        member.score.WithinEpsilon(score, epsilon_)) {
      return true;
    }
  }
  return false;
}

}  // namespace cloudview
