// SelectionEvaluator: exact, interaction-aware evaluation of a candidate
// subset — the ground truth every solver (knapsack, greedy, exhaustive)
// optimizes against.
//
// "Interaction-aware" means a query is answered by the *best* view in the
// selected set (or the base table), so view benefits do not simply add
// up. The knapsack formulation uses additive standalone benefits (the
// paper's approach); the selector then re-evaluates its pick exactly
// through this class and repairs if needed.

#ifndef CLOUDVIEW_CORE_OPTIMIZER_EVALUATOR_H_
#define CLOUDVIEW_CORE_OPTIMIZER_EVALUATOR_H_

#include <vector>

#include "catalog/lattice.h"
#include "common/result.h"
#include "core/cost/cloud_cost_model.h"
#include "core/optimizer/view_candidate.h"
#include "engine/cluster.h"
#include "workload/workload.h"

namespace cloudview {

/// \brief Everything the objectives need to know about one subset.
struct SubsetEvaluation {
  /// Candidate indices, ascending.
  std::vector<size_t> selected;
  /// Per-query t_iV and result sizes for the subset.
  WorkloadCostInput workload_input;
  /// Formula 7/11 totals and duplicated bytes for the subset.
  ViewSetCostInput view_input;
  /// Full monetary breakdown (Formula 1/6).
  CostBreakdown cost;
  /// Formula 9: TprocessingQ with the subset in place.
  Duration processing_time;
  /// processing + one-time materialization (the workload-run response
  /// time reported by the Section 6 experiments; see DESIGN.md §5.6).
  Duration makespan;
};

/// \brief Precomputes the query-x-candidate timing matrix and evaluates
/// subsets exactly.
///
/// The workload and deployment are copied in (both are small); the
/// lattice and cost model are borrowed and must outlive the evaluator.
class SelectionEvaluator {
 public:
  /// \brief Builds the evaluator. `lattice` and `cost_model` must
  /// outlive it; `workload` and `deployment` are copied.
  static Result<SelectionEvaluator> Create(
      const CubeLattice& lattice, const Workload& workload,
      const MapReduceSimulator& simulator, const ClusterSpec& cluster,
      const CloudCostModel& cost_model, const DeploymentSpec& deployment,
      std::vector<ViewCandidate> candidates);

  const std::vector<ViewCandidate>& candidates() const {
    return candidates_;
  }
  size_t num_candidates() const { return candidates_.size(); }
  const Workload& workload() const { return workload_; }
  const DeploymentSpec& deployment() const { return deployment_; }

  /// \brief Exact evaluation of a subset (indices into candidates()).
  Result<SubsetEvaluation> Evaluate(
      const std::vector<size_t>& selected) const;

  /// \brief The no-view evaluation (cached).
  const SubsetEvaluation& baseline() const { return baseline_; }

  /// \brief Processing time saved by materializing candidate `c` alone
  /// (additive knapsack approximation).
  Duration StandaloneProcessingSaving(size_t c) const;

  /// \brief cost({c}).total() - cost({}).total(): the candidate's
  /// standalone monetary footprint (may be negative when compute savings
  /// outweigh storage/materialization).
  Result<Money> StandaloneCostDelta(size_t c) const;

 private:
  SelectionEvaluator(const CubeLattice& lattice, const Workload& workload,
                     const MapReduceSimulator& simulator,
                     const ClusterSpec& cluster,
                     const CloudCostModel& cost_model,
                     const DeploymentSpec& deployment,
                     std::vector<ViewCandidate> candidates);

  const CubeLattice* lattice_;
  Workload workload_;
  const CloudCostModel* cost_model_;
  DeploymentSpec deployment_;
  std::vector<ViewCandidate> candidates_;

  // base_time_[q]: query q answered from the base table.
  std::vector<Duration> base_time_;
  // view_time_[q][c]: query q answered from candidate c; Duration max
  // when c cannot answer q.
  std::vector<std::vector<Duration>> view_time_;
  // result_bytes_[q]: logical result volume of query q.
  std::vector<DataSize> result_bytes_;

  SubsetEvaluation baseline_;
};

}  // namespace cloudview

#endif  // CLOUDVIEW_CORE_OPTIMIZER_EVALUATOR_H_
