// SelectionEvaluator: exact, interaction-aware evaluation of a candidate
// subset — the ground truth every registered solver optimizes against.
//
// "Interaction-aware" means a query is answered by the *best* view in the
// selected set (or the base table), so view benefits do not simply add
// up. The knapsack formulation uses additive standalone benefits (the
// paper's approach); the solvers then re-evaluate their pick exactly
// through this class and repair if needed.
//
// Two evaluation paths are provided (DESIGN.md §5.12):
//  * Evaluate(): the exact ground truth — rebuilds the per-query argmin
//    and the full CostBreakdown from scratch, O(queries x |subset|).
//  * SubsetState + FastTotalCost(): incremental re-scoring for
//    local-search moves — a single add/remove updates the per-query
//    argmin and the running Formula 7/11 totals in O(queries), and the
//    monetary total is recomputed from those totals alone. The property
//    tests assert the two paths agree bit-for-bit.

#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "catalog/lattice.h"
#include "common/aligned_buffer.h"
#include "common/hash.h"
#include "common/result.h"
#include "core/cost/cloud_cost_model.h"
#include "core/optimizer/view_candidate.h"
#include "engine/cluster.h"
#include "workload/workload.h"

namespace cloudview {

class SubsetState;

/// \brief Zobrist token of candidate `c`: subset hashes are XORs of
/// member tokens, so they update in O(1) per add/remove and are
/// independent of insertion order.
inline uint64_t CandidateToken(size_t c) {
  return Mix64(static_cast<uint64_t>(c) + 0x9E3779B97F4A7C15ULL);
}

/// \brief Order-independent hash of a candidate subset (memo-cache key).
inline uint64_t SubsetHash(const std::vector<size_t>& selected) {
  uint64_t h = 0;
  for (size_t c : selected) h ^= CandidateToken(c);
  return h;
}

/// \brief The running totals a subset is scored on: everything the
/// objectives and the monetary fast path consume, plus the memo key.
struct SubsetTotals {
  /// Formula 9 total (frequency-weighted).
  Duration processing;
  /// Formula 7 total.
  Duration materialization;
  /// Formula 11 total (per cycle).
  Duration maintenance;
  /// Duplicated bytes stored for the subset.
  DataSize view_bytes;
  /// SubsetHash of the subset.
  uint64_t hash = 0;

  Duration makespan() const { return processing + materialization; }
};

/// \brief Everything the objectives need to know about one subset.
struct SubsetEvaluation {
  /// Candidate indices, ascending.
  std::vector<size_t> selected;
  /// Per-query t_iV and result sizes for the subset.
  WorkloadCostInput workload_input;
  /// Formula 7/11 totals and duplicated bytes for the subset.
  ViewSetCostInput view_input;
  /// Full monetary breakdown (Formula 1/6).
  CostBreakdown cost;
  /// Formula 9: TprocessingQ with the subset in place.
  Duration processing_time;
  /// processing + one-time materialization (the workload-run response
  /// time reported by the Section 6 experiments; see DESIGN.md §5.6).
  Duration makespan;
};

/// \brief Precomputes the query-x-candidate timing matrix and evaluates
/// subsets exactly.
///
/// The workload and deployment are copied in (both are small); the
/// lattice and cost model are borrowed and must outlive the evaluator.
///
/// Concurrency contract (DESIGN.md §9): one instance per task. The
/// const methods are deterministic but *memoizing* — FastTotalCost()
/// caches storage costs in a per-instance memo — so two threads must
/// not share one instance. Clone() is the cheap per-thread handoff:
/// the query-x-candidate timing tables are immutable and shared by
/// reference across clones, while each clone gets its own (empty)
/// storage memo, so cloning is O(queries + candidates), not
/// O(queries x candidates). Memo contents only affect speed, never
/// values: every clone computes bit-identical results.
class SelectionEvaluator {
 public:
  /// \brief Builds the evaluator. `lattice` and `cost_model` must
  /// outlive it; `workload` and `deployment` are copied.
  static Result<SelectionEvaluator> Create(
      const CubeLattice& lattice, const Workload& workload,
      const MapReduceSimulator& simulator, const ClusterSpec& cluster,
      const CloudCostModel& cost_model, const DeploymentSpec& deployment,
      std::vector<ViewCandidate> candidates);

  const std::vector<ViewCandidate>& candidates() const {
    return candidates_;
  }
  size_t num_candidates() const { return candidates_.size(); }
  const Workload& workload() const { return workload_; }
  size_t num_queries() const { return workload_.size(); }
  const DeploymentSpec& deployment() const { return deployment_; }
  const CloudCostModel& cost_model() const { return *cost_model_; }

  /// \brief Query `q` answered from the base table (precomputed).
  Duration base_time(size_t q) const {
    return Duration::FromMillis(timing_->base_time_ms[q]);
  }
  /// \brief Query `q` answered from candidate `c`; a huge sentinel when
  /// `c` cannot answer `q` (never wins a min against base_time). Indexes
  /// the candidate-major matrix — the single copy (DESIGN.md §11).
  Duration view_time(size_t q, size_t c) const {
    return Duration::FromMillis(
        timing_->view_time_ms[c * workload_.size() + q]);
  }
  /// \brief Candidate `c`'s timing column in raw milliseconds,
  /// contiguous over queries — what the eval_kernels sweeps stream.
  const int64_t* view_time_ms_of(size_t c) const {
    return timing_->view_time_ms.data() + c * workload_.size();
  }
  /// \brief Per-query base times / frequency weights as flat aligned
  /// arrays (the kernels' other operands).
  const int64_t* base_time_ms_data() const {
    return timing_->base_time_ms.data();
  }
  const int64_t* frequency_data() const {
    return timing_->frequency.data();
  }
  /// \brief Candidates that can beat the base table for query `q`,
  /// ascending by view_time — SubsetState::Remove's argmin repair walks
  /// this and stops at the first surviving member (expected O(1)).
  const std::vector<uint32_t>& ranked_candidates(size_t q) const {
    return timing_->ranked_candidates[q];
  }
  /// \brief Frequency weight of query `q` (Formula 9).
  int64_t frequency(size_t q) const { return timing_->frequency[q]; }

  /// \brief Cheap per-task copy: shares the immutable timing tables by
  /// reference, starts with an empty storage memo. Build per-thread
  /// SubsetStates and SolverContexts on the clone, never on a shared
  /// instance (FastTotalCost checks the pairing).
  SelectionEvaluator Clone() const;

  /// \brief Clone() with `sunk` candidates' materialization time zeroed
  /// — the temporal planner's transition-aware period problem (carried
  /// views' builds are sunk costs; see temporal_planner.h). The timing
  /// tables are unaffected (they never depend on build time), so this
  /// too is O(queries + candidates). InvalidArgument on an out-of-range
  /// index.
  Result<SelectionEvaluator> CloneWithSunkBuilds(
      const std::vector<size_t>& sunk) const;

  /// \brief Clone() re-billed under `architecture` — the arch-sweep
  /// solver's per-task handoff. Timing tables are shared unchanged (an
  /// architecture rescales money, never query times); the baseline and
  /// the cold memos are rebuilt under the new bill. InvalidArgument
  /// when the deployment bills compute as a single session and the
  /// architecture is not the identity (a replicated or spot fleet is
  /// not one rental session).
  Result<SelectionEvaluator> CloneWithArchitecture(
      const ArchitectureModel& architecture) const;

  /// \brief Exact evaluation of a subset (indices into candidates()).
  Result<SubsetEvaluation> Evaluate(
      const std::vector<size_t>& selected) const;

  /// \brief The no-view evaluation (cached).
  const SubsetEvaluation& baseline() const { return baseline_; }

  /// \brief Total monetary cost recomputed from running totals alone —
  /// no per-query rebuild. Matches Evaluate(...).cost.total() exactly:
  /// compute charges are functions of the three time totals, transfer is
  /// subset-independent (Section 4.1), and storage depends only on the
  /// duplicated view bytes (memoized per distinct total).
  Result<Money> FastTotalCost(const SubsetTotals& totals) const;
  Result<Money> FastTotalCost(const SubsetState& state) const;

  /// \brief Transfer cost, constant across subsets (cached).
  Money transfer_cost() const { return baseline_.cost.transfer; }

  /// \brief Per-request I/O charges, constant across subsets (cached):
  /// views change which bytes a query touches, not how many API calls
  /// the workload makes.
  Money request_cost() const { return baseline_.cost.requests; }

  /// \brief Processing time saved by materializing candidate `c` alone
  /// (additive knapsack approximation).
  Duration StandaloneProcessingSaving(size_t c) const;

  /// \brief cost({c}).total() - cost({}).total(): the candidate's
  /// standalone monetary footprint (may be negative when compute savings
  /// outweigh storage/materialization).
  Result<Money> StandaloneCostDelta(size_t c) const;

 private:
  /// The precomputed query-x-candidate tables — the expensive, immutable
  /// part of an evaluator. Built once, shared read-only across every
  /// Clone() via shared_ptr (parallel portfolio starts, temporal period
  /// clones), so per-task copies never rebuild or duplicate the matrix.
  ///
  /// Structure-of-arrays (DESIGN.md §11): every hot-path quantity is a
  /// flat, 64-byte-aligned int64 array in raw milliseconds, and the
  /// timing matrix exists in exactly one layout — candidate-major — so
  /// a probe streams one contiguous column per candidate. The old
  /// query-major nested-vector duplicate is gone (the matrix was stored
  /// twice); query-major reads go through view_time(q, c), which just
  /// strides the candidate-major array.
  struct TimingTable {
    // base_time_ms[q]: query q answered from the base table.
    AlignedVector<int64_t> base_time_ms;
    // frequency[q]: per-query frequency weight (hot-path copy).
    AlignedVector<int64_t> frequency;
    // view_time_ms[c * num_queries + q]: query q answered from
    // candidate c; a huge sentinel when c cannot answer q.
    AlignedVector<int64_t> view_time_ms;
    // ranked_candidates[q]: candidates beating base_time[q], ascending
    // by view_time (ties by index, matching Evaluate()'s scan order).
    std::vector<std::vector<uint32_t>> ranked_candidates;
    // result_bytes[q]: logical result volume of query q.
    std::vector<DataSize> result_bytes;
  };

  /// Open-addressing int64 -> int64 memo for the monetary fast path
  /// (storage cost by duplicated-byte total, compute cost by billed
  /// duration). Replaces std::unordered_map on the probe hot path: a
  /// lookup is a Mix64 and a handful of contiguous loads. Bounded:
  /// reaching kMaxEntries drops the epoch and re-memoizes, so long
  /// solves keep their working set cached instead of silently
  /// degrading to recompute-everything.
  class CostMemo {
   public:
    bool Lookup(int64_t key, int64_t* value) const {
      if (slots_.empty()) return false;
      size_t mask = slots_.size() - 1;
      for (size_t i = Mix64(static_cast<uint64_t>(key)) & mask;;
           i = (i + 1) & mask) {
        if (slots_[i].key == kEmptyKey) return false;
        if (slots_[i].key == key) {
          *value = slots_[i].value;
          return true;
        }
      }
    }

    void Insert(int64_t key, int64_t value) {
      if (size_ >= kMaxEntries) {
        // Epoch reset instead of the old silent `return`: refusing new
        // keys forever degraded long solves to recompute-everything
        // with no signal. Dropping the epoch keeps memory bounded while
        // the working set re-memoizes within a few probes.
        slots_.assign(slots_.size(), Slot{});
        size_ = 0;
        ++epoch_resets_;
      }
      if (slots_.empty()) slots_.assign(kInitialSlots, Slot{});
      if ((size_ + 1) * 4 > slots_.size() * 3) Grow();
      size_t mask = slots_.size() - 1;
      for (size_t i = Mix64(static_cast<uint64_t>(key)) & mask;;
           i = (i + 1) & mask) {
        if (slots_[i].key == key) return;
        if (slots_[i].key == kEmptyKey) {
          slots_[i] = Slot{key, value};
          ++size_;
          return;
        }
      }
    }

   private:
    // Byte totals and billed millis are never negative, so INT64_MIN is
    // a safe empty marker (key 0 — the empty subset — stays valid).
    static constexpr int64_t kEmptyKey =
        std::numeric_limits<int64_t>::min();
    static constexpr size_t kInitialSlots = 1u << 6;
    static constexpr size_t kMaxEntries = 1u << 16;

    struct Slot {
      int64_t key = kEmptyKey;
      int64_t value = 0;
    };

    void Grow() {
      std::vector<Slot> old = std::move(slots_);
      slots_.assign(old.size() * 2, Slot{});
      size_t mask = slots_.size() - 1;
      for (const Slot& slot : old) {
        if (slot.key == kEmptyKey) continue;
        for (size_t i = Mix64(static_cast<uint64_t>(slot.key)) & mask;;
             i = (i + 1) & mask) {
          if (slots_[i].key == kEmptyKey) {
            slots_[i] = slot;
            break;
          }
        }
      }
    }

    std::vector<Slot> slots_;
    size_t size_ = 0;
    uint64_t epoch_resets_ = 0;
  };

  SelectionEvaluator(const CubeLattice& lattice, const Workload& workload,
                     const MapReduceSimulator& simulator,
                     const ClusterSpec& cluster,
                     const CloudCostModel& cost_model,
                     const DeploymentSpec& deployment,
                     std::vector<ViewCandidate> candidates);

  /// Clone() backing: copies everything except the storage memo (the
  /// clone starts cold), so cloning never pays for — or even reads — a
  /// source memo that may have grown large. Safe to run concurrently
  /// against one shared source.
  struct CloneTag {};
  SelectionEvaluator(const SelectionEvaluator& other, CloneTag)
      : lattice_(other.lattice_),
        workload_(other.workload_),
        cost_model_(other.cost_model_),
        deployment_(other.deployment_),
        candidates_(other.candidates_),
        timing_(other.timing_),
        baseline_(other.baseline_),
        base_storage_events_(other.base_storage_events_) {}

  const CubeLattice* lattice_;
  Workload workload_;
  const CloudCostModel* cost_model_;
  DeploymentSpec deployment_;
  std::vector<ViewCandidate> candidates_;

  // Immutable after construction; shared across Clone()s.
  std::shared_ptr<const TimingTable> timing_;

  SubsetEvaluation baseline_;

  /// One coalesced size-change event of the base storage timeline,
  /// pre-filtered to the deployment's storage period.
  struct StorageEvent {
    Months at;
    DataSize delta;
  };
  /// deployment_.base_storage flattened once at construction: the
  /// coalesced (month, delta) events below storage_period, time-ordered.
  /// A storage-memo miss replays StorageTimeline::Intervals() over this
  /// tiny flat vector with the subset's duplicated bytes folded in at
  /// month 0 — the identical interval walk and StorageCost calls, minus
  /// the per-probe std::map copy and interval-vector allocation.
  std::vector<StorageEvent> base_storage_events_;

  /// Compute bill for `busy` time, memoized by the billed (granularity-
  /// rounded) duration — rounding collapses the ~2^n distinct raw time
  /// totals onto few distinct billed spans, so the exact-rational
  /// ScaleBy division leaves the probe hot path after warm-up.
  Money ComputeBill(Duration busy) const;

  // Fast-path memos, keyed by duplicated-byte total (storage: the
  // tiered Formula 5 walk) and billed millis (compute: the __int128
  // rational scaling). Per-instance (never shared across Clone()s):
  // these memos are why one instance must not be probed from two
  // threads — and why a clone per task is enough. Contents only affect
  // speed, never values.
  // thread-compat: unsynchronized memo — one instance (or Clone())
  // per task, per DESIGN.md §9.2.
  mutable CostMemo storage_cost_memo_;
  mutable CostMemo compute_cost_memo_;
  // One-slot front cache over compute_cost_memo_ (see ComputeBill).
  // thread-compat: unsynchronized memo — one instance per task.
  mutable int64_t compute_last_key_ = std::numeric_limits<int64_t>::min();
  mutable int64_t compute_last_micros_ = 0;
};

/// \brief Incrementally maintained evaluation of one evolving subset.
///
/// Tracks, across single add/remove moves:
///  * per-query best-view argmin and best time (ties broken toward the
///    base table, matching Evaluate()'s strict-min scan),
///  * the frequency-weighted processing total (Formula 9),
///  * the running materialization / maintenance / duplicated-bytes
///    totals (Formulas 7 and 11),
///  * the Zobrist subset hash (memo-cache key).
///
/// Add() is O(queries); Remove() is O(queries) plus an argmin rescan of
/// the remaining members for the queries that lose their best view. All
/// totals are integer arithmetic, so they equal a from-scratch
/// Evaluate() exactly, not just approximately.
class SubsetState {
 public:
  /// \brief The empty selection. Keeps a reference; `evaluator` must
  /// outlive the state.
  explicit SubsetState(const SelectionEvaluator& evaluator);

  /// \brief Back to the empty selection — equivalent to a freshly
  /// constructed state but without reallocating, for callers that score
  /// many subsets from scratch (the genetic solver's per-individual
  /// rebuild).
  void Reset();

  /// \brief Adds candidate `c` (must not be a member).
  void Add(size_t c);
  /// \brief Removes candidate `c` (must be a member).
  void Remove(size_t c);
  /// \brief Adds or removes `c`, whichever applies.
  void Toggle(size_t c) { contains(c) ? Remove(c) : Add(c); }

  /// \brief The totals this state would have after Toggle(c), computed
  /// read-only — the move-scoring primitive search loops probe
  /// neighborhoods with (no commit, no revert, no writes).
  SubsetTotals PeekToggle(size_t c) const;

  /// \brief PeekToggle for many candidates in one pass over the timing
  /// matrix: out[i] = PeekToggle(candidates[i]), bit-for-bit. The
  /// batched neighborhood-scan primitive (DESIGN.md §11): consecutive
  /// candidate columns stream sequentially through the dispatched
  /// eval_kernels sweep instead of paying per-call setup per toggle.
  /// `out` must be at least candidates.size() long.
  void PeekToggleBatch(std::span<const size_t> candidates,
                       std::span<SubsetTotals> out) const;

  /// \brief This state's current totals.
  SubsetTotals totals() const {
    return SubsetTotals{processing_, materialization_, maintenance_,
                        view_bytes_, hash_};
  }

  bool contains(size_t c) const { return member_[c] != 0; }
  /// \brief Number of selected candidates.
  size_t size() const { return count_; }
  /// \brief Member indices, ascending (materialized on demand).
  std::vector<size_t> Selected() const;

  /// \brief Order-independent subset hash (matches SubsetHash()).
  uint64_t hash() const { return hash_; }

  /// \brief Formula 9 total with this subset in place.
  Duration processing_time() const { return processing_; }
  /// \brief Formula 7 total.
  Duration materialization_time() const { return materialization_; }
  /// \brief Formula 11 total (per maintenance cycle).
  Duration maintenance_time() const { return maintenance_; }
  /// \brief processing + one-time materialization (see SubsetEvaluation).
  Duration makespan() const { return processing_ + materialization_; }
  /// \brief Duplicated bytes stored for the subset.
  DataSize view_bytes() const { return view_bytes_; }

  const SelectionEvaluator& evaluator() const { return *evaluator_; }

 private:
  /// PeekToggle body shared with PeekToggleBatch.
  SubsetTotals PeekToggleInto(size_t c) const;

  const SelectionEvaluator* evaluator_;
  // kFromBase in best_view_[q] means the base table answers q best.
  static constexpr uint32_t kFromBase =
      std::numeric_limits<uint32_t>::max();

  std::vector<uint8_t> member_;
  size_t count_ = 0;
  // SoA hot state (DESIGN.md §11): the per-query argmin as two flat
  // aligned arrays the vectorized sweeps read and write directly.
  AlignedVector<uint32_t> best_view_;
  AlignedVector<int64_t> best_time_ms_;
  Duration processing_;
  Duration materialization_;
  Duration maintenance_;
  DataSize view_bytes_;
  uint64_t hash_ = 0;
};

/// \brief Memo of compact subset evaluations keyed by SubsetHash.
///
/// Stores only what the objectives score on — the two time metrics, the
/// monetary total, and the view bytes — so repeated probes of the same
/// subset (local
/// search re-visiting a neighborhood, annealing re-proposing a toggle,
/// different solvers probing the same region) skip even the fast
/// incremental cost path. Shared by every solver run on one selector.
///
/// Implementation: open-addressing with linear probing over a flat
/// power-of-two slot array. Keys are Zobrist hashes (already avalanche
/// mixed), so the raw key indexes well; a memo probe is a handful of
/// contiguous loads, not a node-based map walk — this sits on the hot
/// path of every solver move.
///
/// Entries are keyed by the 64-bit hash alone — a colliding subset
/// would silently read another subset's entry. The accepted tradeoff:
/// at the millions-of-entries scale a selector can accumulate, the
/// collision probability is ~n^2/2^65 (< 1e-6), and final results are
/// immune because Finalize() re-scores through exact Evaluate().
class EvaluationCache {
 public:
  /// \brief Aggregate telemetry shared across a cache family (a parent
  /// and its NewChild() task caches). Counters used to be per-instance
  /// and vanished with every per-task child, so session-level hit rates
  /// under-reported everything the portfolio / branch-and-bound /
  /// pareto fan-outs probed; children now flush their local counters
  /// here when they die. Atomic because children flush from pool
  /// threads; the hot path never touches these (local counters flush
  /// in bulk).
  struct SharedStats {
    std::atomic<uint64_t> lookups{0};
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> evictions{0};
  };

  /// \brief One cache family's aggregate counts (sink totals plus this
  /// instance's not-yet-flushed locals).
  struct AggregateCounts {
    uint64_t lookups = 0;
    uint64_t hits = 0;
    uint64_t evictions = 0;
    uint64_t misses() const { return lookups - hits; }
  };

  struct Entry {
    Duration processing_time;
    Duration makespan;
    Money total_cost;
    /// Duplicated view bytes — carried so cache hits can rebuild the
    /// full Probe (storage constraints, MultiScore) without recomputing.
    DataSize view_bytes;
  };

  /// Default entry cap (~40MB of slots at full load). Long solves used
  /// to grow the table without bound; now reaching the cap drops the
  /// epoch (see Insert) and counts it, so memory stays bounded and the
  /// degradation is visible in telemetry instead of silent.
  static constexpr size_t kDefaultMaxEntries = size_t{1} << 20;

  /// Starts small and doubles on load: solvers build one cache per run
  /// (and fan-out solvers one per start/task), so the initial footprint
  /// is per-solve setup cost on the hot path — a 2^12-slot start cost
  /// ~200KB of zeroing per solve, which dominated the short gate-row
  /// solves (greedy, knapsack-dp) and every portfolio/pareto task. 2^8
  /// keeps that setup at ~8KB while skipping the first two growth
  /// rehashes of the annealing/local-search runs (a few thousand
  /// distinct subsets each).
  explicit EvaluationCache(size_t max_entries = kDefaultMaxEntries)
      : max_entries_(max_entries > 0 ? max_entries : 1),
        stats_(std::make_shared<SharedStats>()) {
    Rehash(1 << 8);
  }

  /// Moves transfer the stats sink; the moved-from cache keeps stale
  /// local counters but no sink, so its destructor flushes nothing
  /// twice. Copies are banned — two caches double-flushing one set of
  /// local counters would inflate the aggregate.
  EvaluationCache(EvaluationCache&&) noexcept = default;
  EvaluationCache& operator=(EvaluationCache&&) noexcept = default;
  EvaluationCache(const EvaluationCache&) = delete;
  EvaluationCache& operator=(const EvaluationCache&) = delete;

  ~EvaluationCache() { FlushStats(); }

  /// \brief An empty cache (same entry cap) that shares this family's
  /// stats sink — what fan-out solvers hand their shared-nothing tasks
  /// so the per-task probes still land in the session-level telemetry.
  /// The child's *entries* are its own (the one-task-per-cache
  /// contract is unchanged); only the counters aggregate.
  EvaluationCache NewChild() const {
    EvaluationCache child(max_entries_);
    child.stats_ = stats_;
    return child;
  }

  /// \brief Adds the local counters into the shared sink and zeroes
  /// them. Called by the destructor; callers that keep a child alive
  /// can flush early to make its probes visible in the aggregate.
  void FlushStats() {
    if (stats_ == nullptr) return;
    stats_->lookups.fetch_add(lookups_, std::memory_order_relaxed);
    stats_->hits.fetch_add(hits_, std::memory_order_relaxed);
    stats_->evictions.fetch_add(evictions_, std::memory_order_relaxed);
    lookups_ = 0;
    hits_ = 0;
    evictions_ = 0;
  }

  /// \brief Family-wide totals: everything flushed by dead (or
  /// explicitly flushed) children plus this instance's own live
  /// counters. The truthful session-level numbers (live unflushed
  /// children are invisible until they die — fan-outs join before
  /// anyone reads these).
  AggregateCounts aggregate() const {
    AggregateCounts out{lookups_, hits_, evictions_};
    if (stats_ != nullptr) {
      out.lookups += stats_->lookups.load(std::memory_order_relaxed);
      out.hits += stats_->hits.load(std::memory_order_relaxed);
      out.evictions += stats_->evictions.load(std::memory_order_relaxed);
    }
    return out;
  }

  /// \brief Returns the entry for `key`, or nullptr on a miss.
  const Entry* Find(uint64_t key) const {
    ++lookups_;
    if (key == kEmptySubsetKey) {
      if (!has_empty_) return nullptr;
      ++hits_;
      return &empty_entry_;
    }
    size_t mask = slots_.size() - 1;
    for (size_t i = key & mask;; i = (i + 1) & mask) {
      if (slots_[i].key == kEmptySubsetKey) return nullptr;
      if (slots_[i].key == key) {
        ++hits_;
        return &slots_[i].entry;
      }
    }
  }

  void Insert(uint64_t key, const Entry& entry) {
    if (key == kEmptySubsetKey) {
      empty_entry_ = entry;
      has_empty_ = true;
      return;
    }
    if (size_ >= max_entries_) {
      // Epoch eviction (was: unbounded growth; and the sibling CostMemo
      // silently stopped caching when full): drop every entry, keep the
      // slot array, count the eviction. Entries are pure functions of
      // their key, so re-misses just recompute — results never change,
      // only speed (DESIGN.md §13.4).
      slots_.assign(slots_.size(), Slot{});
      size_ = 0;
      ++evictions_;
    }
    if ((size_ + 1) * 4 > slots_.size() * 3) Rehash(slots_.size() * 2);
    size_t mask = slots_.size() - 1;
    for (size_t i = key & mask;; i = (i + 1) & mask) {
      if (slots_[i].key == key) return;  // Entries are immutable.
      if (slots_[i].key == kEmptySubsetKey) {
        slots_[i] = Slot{key, entry};
        ++size_;
        return;
      }
    }
  }

  size_t size() const { return size_ + (has_empty_ ? 1 : 0); }
  size_t max_entries() const { return max_entries_; }
  uint64_t lookups() const { return lookups_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return lookups_ - hits_; }
  /// \brief Epoch evictions performed (full-cache drops). Nonzero means
  /// the solve's distinct-subset working set exceeded max_entries —
  /// surfaced in the BENCH_JSON cache columns.
  uint64_t evictions() const { return evictions_; }

 private:
  /// SubsetHash({}) == 0; the zero key marks empty slots instead and the
  /// empty subset gets a dedicated side entry.
  static constexpr uint64_t kEmptySubsetKey = 0;

  struct Slot {
    uint64_t key = kEmptySubsetKey;
    Entry entry;
  };

  void Rehash(size_t capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(capacity, Slot{});
    size_t mask = capacity - 1;
    for (const Slot& slot : old) {
      if (slot.key == kEmptySubsetKey) continue;
      for (size_t i = slot.key & mask;; i = (i + 1) & mask) {
        if (slots_[i].key == kEmptySubsetKey) {
          slots_[i] = slot;
          break;
        }
      }
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
  size_t max_entries_ = kDefaultMaxEntries;
  uint64_t evictions_ = 0;
  bool has_empty_ = false;
  Entry empty_entry_;
  // Telemetry bumped by const Find().
  // thread-compat: unsynchronized counters — one cache per task/solver
  // run, per DESIGN.md §9.2.
  mutable uint64_t lookups_ = 0;
  mutable uint64_t hits_ = 0;
  /// The family aggregate (see SharedStats). Shared across NewChild()
  /// caches; only touched in bulk by FlushStats()/aggregate().
  std::shared_ptr<SharedStats> stats_;
};

}  // namespace cloudview

