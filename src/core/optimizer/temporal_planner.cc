#include "core/optimizer/temporal_planner.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/str_format.h"
#include "common/thread_pool.h"
#include "core/optimizer/solver.h"

namespace cloudview {

namespace {

/// The union mix candidate generation sees: every cuboid queried in any
/// period, its frequency summed over the horizon — so a view that only
/// matters in month 9 is still in Vcand from month 0.
Workload UnionWorkload(const WorkloadTimeline& timeline) {
  std::map<CuboidId, QuerySpec> merged;
  for (const TimelinePeriod& period : timeline.periods()) {
    for (const QuerySpec& q : period.workload.queries()) {
      auto [it, inserted] = merged.emplace(q.target, q);
      if (!inserted) it->second.frequency += q.frequency;
    }
  }
  std::vector<QuerySpec> queries;
  queries.reserve(merged.size());
  for (auto& [target, query] : merged) queries.push_back(std::move(query));
  return Workload(std::move(queries));
}

/// Indices in `next` not in `prev` (both ascending).
std::vector<size_t> SetDifference(const std::vector<size_t>& next,
                                  const std::vector<size_t>& prev) {
  std::vector<size_t> out;
  std::set_difference(next.begin(), next.end(), prev.begin(), prev.end(),
                      std::back_inserter(out));
  return out;
}

}  // namespace

std::string ReselectPolicy::Name() const {
  switch (kind) {
    case Kind::kStatic:
      return "static";
    case Kind::kEveryK:
      return StrFormat("every-%lld", static_cast<long long>(every_k));
    case Kind::kOnDrift:
      return StrFormat("drift-%.2f", drift_threshold);
  }
  return "unknown";
}

Duration TemporalRunResult::TotalProcessingTime() const {
  Duration total = Duration::Zero();
  for (const TemporalPeriodRow& row : ledger) total += row.processing_time;
  return total;
}

Result<TemporalPlanner> TemporalPlanner::Create(
    const CubeLattice& lattice, const MapReduceSimulator& simulator,
    const ClusterSpec& cluster, const CloudCostModel& cost_model,
    WorkloadTimeline timeline, const CandidateGenOptions& options,
    int64_t maintenance_cycles, ArchitectureModel architecture) {
  if (maintenance_cycles < 0) {
    return Status::InvalidArgument("maintenance cycles must be >= 0");
  }
  TemporalPlanner planner(lattice, simulator, cluster, cost_model,
                          std::move(timeline), maintenance_cycles,
                          architecture);
  CV_ASSIGN_OR_RETURN(
      planner.candidates_,
      GenerateCandidates(lattice, UnionWorkload(planner.timeline_),
                         simulator, cluster, options));
  if (planner.candidates_.empty()) {
    return Status::FailedPrecondition(
        "candidate generation produced no views for the timeline");
  }
  planner.base_at_period_.reserve(planner.timeline_.num_periods() + 1);
  DataSize base = lattice.fact_scan_size();
  planner.base_at_period_.push_back(base);
  for (const TimelinePeriod& period : planner.timeline_.periods()) {
    base += period.base_growth;
    planner.base_at_period_.push_back(base);
  }

  // Pre-materialize each period's evaluator (timing table + baseline) —
  // the walk-independent, embarrassingly parallel bulk of a planner's
  // cost. Built from the full candidate pool; the walk later snapshots
  // them with the carried views' builds zeroed.
  size_t periods = planner.timeline_.num_periods();
  planner.period_evaluators_.resize(periods);
  CV_RETURN_IF_ERROR(ParallelForStatus(periods, [&](size_t p) -> Status {
    CV_ASSIGN_OR_RETURN(
        SelectionEvaluator evaluator,
        SelectionEvaluator::Create(
            *planner.lattice_, planner.timeline_.period(p).workload,
            *planner.simulator_, planner.cluster_, *planner.cost_model_,
            planner.PeriodDeployment(p), planner.candidates_));
    planner.period_evaluators_[p] =
        std::make_unique<const SelectionEvaluator>(std::move(evaluator));
    return Status::OK();
  }));
  return planner;
}

bool TemporalPlanner::ShouldReselect(const ReselectPolicy& policy,
                                     size_t p, double drift) {
  if (p == 0) return true;  // Every policy needs an initial selection.
  switch (policy.kind) {
    case ReselectPolicy::Kind::kStatic:
      return false;
    case ReselectPolicy::Kind::kEveryK:
      return p % static_cast<size_t>(policy.every_k) == 0;
    case ReselectPolicy::Kind::kOnDrift:
      return drift >= policy.drift_threshold;
  }
  return false;
}

DeploymentSpec TemporalPlanner::PeriodDeployment(size_t p) const {
  DeploymentSpec deployment;
  deployment.instance = cluster_.instance;
  deployment.nb_instances = cluster_.nodes;
  deployment.storage_period = timeline_.period_length();
  deployment.base_storage = StorageTimeline(base_at_period_[p]);
  // Ingress the solver scores against: the initial upload in period 0
  // and the period's base-data growth. The transition ingress of views
  // it might add is charged by the ledger, not scored here (it depends
  // on the previous period's selection, which the stand-alone period
  // problem does not see).
  if (p == 0) {
    deployment.ingress.initial_dataset = base_at_period_[0];
  }
  deployment.ingress.inserted_data =
      base_at_period_[p + 1] - base_at_period_[p];
  deployment.maintenance_cycles = maintenance_cycles_;
  deployment.single_compute_session = false;
  // Re-selection scoring sees the architecture-adjusted bill, so the
  // solver's trade-offs (e.g. cheap spot builds) match the ledger's.
  deployment.architecture = architecture_;
  return deployment;
}

Result<TemporalRunResult> TemporalPlanner::Run(
    const ObjectiveSpec& spec, const ReselectPolicy& policy,
    std::string_view solver_name) const {
  if (policy.kind == ReselectPolicy::Kind::kEveryK &&
      policy.every_k <= 0) {
    return Status::InvalidArgument("every_k must be positive");
  }
  if (policy.kind == ReselectPolicy::Kind::kOnDrift &&
      (policy.drift_threshold < 0.0 || policy.drift_threshold > 1.0)) {
    return Status::InvalidArgument("drift threshold outside [0, 1]");
  }
  CV_ASSIGN_OR_RETURN(const Solver* solver,
                      SolverRegistry::Global().Find(solver_name));

  TemporalRunResult result;
  result.policy = policy;
  result.solver = std::string(solver_name);

  const ComputeCostModel& compute = cost_model_->compute();
  const TransferCostModel& transfer = cost_model_->transfer();
  const StorageCostModel& storage = cost_model_->storage();

  // The horizon-long storage ledger: base data (with growth events) plus
  // view add/drop events appended as the walk decides them.
  StorageTimeline horizon_storage(base_at_period_[0]);
  for (size_t p = 1; p < timeline_.num_periods(); ++p) {
    DataSize growth = base_at_period_[p] - base_at_period_[p - 1];
    if (growth.bytes() != 0) {
      CV_RETURN_IF_ERROR(
          horizon_storage.AddDelta(timeline_.PeriodStart(p), growth));
    }
  }
  Money storage_billed;  // Cumulative Formula 5 up to the period walked.

  std::vector<size_t> prev_selected;
  Workload last_solve_mix;
  for (size_t p = 0; p < timeline_.num_periods(); ++p) {
    const TimelinePeriod& period = timeline_.period(p);
    DeploymentSpec deployment = PeriodDeployment(p);
    // Transition-aware period problem: carried views' build time is
    // sunk, so their materialization is zeroed — the solver charges
    // builds only for views it newly adds (and a dropped-then-readded
    // view pays its build again). This is what makes holding a good
    // selection free and replacing a stale one a one-time charge.
    // The snapshot shares the pre-built timing table; only the
    // candidate pool and memo are per-walk.
    CV_ASSIGN_OR_RETURN(
        SelectionEvaluator evaluator,
        period_evaluators_[p]->CloneWithSunkBuilds(prev_selected));

    // Warm start: the previous period's selection, rebuilt by
    // incremental adds — no cold Evaluate of the carried subset.
    SubsetState state(evaluator);
    for (size_t c : prev_selected) state.Add(c);

    TemporalPeriodRow row;
    row.period = p;
    row.drift = p == 0 ? 0.0
                       : WorkloadTimeline::Drift(period.workload,
                                                 last_solve_mix);
    row.reselected = ShouldReselect(policy, p, row.drift);

    if (row.reselected) {
      EvaluationCache cache;
      SolverContext context(evaluator, spec, &cache);
      CV_ASSIGN_OR_RETURN(SelectionResult fresh,
                          solver->Solve(spec, context));
      // Hill-climbed warm start: often as good as the fresh solve and
      // closer to the carried selection. Ties prefer it — fewer
      // transitions at equal score.
      SubsetState climbed = state;
      CV_RETURN_IF_ERROR(context.HillClimb(climbed));
      CV_ASSIGN_OR_RETURN(SelectionResult warm,
                          context.Finalize(climbed));
      const SelectionResult& winner =
          context.ScoreOf(warm.evaluation) <=
                  context.ScoreOf(fresh.evaluation)
              ? warm
              : fresh;
      // Move the warm state to the winning selection incrementally.
      for (size_t c = 0; c < candidates_.size(); ++c) {
        bool want = std::binary_search(winner.evaluation.selected.begin(),
                                       winner.evaluation.selected.end(),
                                       c);
        if (want != state.contains(c)) state.Toggle(c);
      }
      last_solve_mix = period.workload;
      ++result.solver_runs;
    } else {
      ++result.warm_periods;
    }
    row.selected = state.Selected();

    // --- Transition: build what was added, retire what was dropped ---
    std::vector<size_t> added = SetDifference(row.selected, prev_selected);
    std::vector<size_t> dropped =
        SetDifference(prev_selected, row.selected);
    row.views_added = added.size();
    row.views_dropped = dropped.size();
    DataSize added_bytes;
    for (size_t c : added) added_bytes += candidates_[c].size;
    // With carried builds zeroed, the warm state's materialization
    // total is exactly the added views' build time.
    Duration added_build = state.materialization_time();
    DataSize dropped_bytes;
    for (size_t c : dropped) dropped_bytes += candidates_[c].size;

    Months at = timeline_.PeriodStart(p);
    if (added_bytes.bytes() != 0) {
      CV_RETURN_IF_ERROR(horizon_storage.AddDelta(at, added_bytes));
    }
    if (dropped_bytes.bytes() != 0) {
      CV_RETURN_IF_ERROR(horizon_storage.AddDelta(
          at, DataSize::FromBytes(-dropped_bytes.bytes())));
    }

    // --- The period's bill -------------------------------------------
    row.processing_time = state.processing_time();
    row.cost.processing = compute.TimeCost(
        state.processing_time(), deployment.instance,
        deployment.nb_instances);
    row.cost.materialization = compute.TimeCost(
        added_build, deployment.instance, deployment.nb_instances);
    row.cost.maintenance =
        compute.TimeCost(state.maintenance_time(), deployment.instance,
                         deployment.nb_instances) *
        maintenance_cycles_;
    // Transition ingress: newly built views are written into cloud
    // storage — billed as inserted data where ingress is not free.
    IngressVolumes ingress = deployment.ingress;
    ingress.inserted_data += added_bytes;
    const WorkloadCostInput& workload_input =
        evaluator.baseline().workload_input;
    row.cost.transfer = transfer.GeneralTransferCost(workload_input,
                                                     ingress);
    row.cost.requests = transfer.RequestCost(workload_input);
    // This period's slice of the horizon storage bill (marginal, so the
    // slices sum to the exact horizon Formula 5 under tiered rates).
    CV_ASSIGN_OR_RETURN(
        Money storage_to_here,
        storage.Cost(horizon_storage, timeline_.PeriodStart(p + 1)));
    row.cost.storage = storage_to_here - storage_billed;
    storage_billed = storage_to_here;

    // --- Architecture lowering of the period bill --------------------
    // Mirrors ApplyArchitecture in the cost model (same ScaleBy order:
    // cycles multiplied in before the rational scale), so the ledger
    // agrees with the architecture-adjusted evaluator the solver just
    // scored against.
    if (!architecture_.is_identity()) {
      const ArchitectureModel& arch = architecture_;
      row.cost.processing = row.cost.processing.ScaleBy(
          arch.compute_num, arch.compute_den);
      row.cost.materialization = row.cost.materialization.ScaleBy(
          arch.fanout_num, arch.fanout_den);
      row.cost.maintenance = row.cost.maintenance.ScaleBy(
          arch.fanout_num, arch.fanout_den);
      // Spot-interruption transition surcharge: an interruption
      // mid-build loses the in-flight materialization (and maintenance
      // rewrite) work, which must be redone on a fresh node. The
      // expectation is re-run compute proportional to the transition
      // bill — billed here, so a spot horizon pays for its churn on
      // exactly the periods that transition.
      row.cost.interruption =
          (row.cost.materialization + row.cost.maintenance)
              .ScaleBy(arch.interruption_num, arch.interruption_den);
      row.cost.storage = row.cost.storage.ScaleBy(
          arch.storage_num, arch.storage_den);
      if (arch.cross_az_copies > 0) {
        // Bytes written this period and replicated across AZ
        // boundaries: the initial upload (period 0), base growth plus
        // new-view builds (both in inserted_data), and maintenance
        // rewrites of the resident set.
        DataSize resident;
        for (size_t c : row.selected) resident += candidates_[c].size;
        int64_t written = ingress.initial_dataset.bytes() +
                          ingress.inserted_data.bytes() +
                          resident.bytes() * maintenance_cycles_;
        row.cost.inter_az = cost_model_->pricing().InterAzCost(
            DataSize::FromBytes(written * arch.cross_az_copies));
      }
    }

    result.total += row.cost;
    prev_selected = row.selected;
    result.ledger.push_back(std::move(row));
  }
  return result;
}

Result<std::vector<TemporalRunResult>> TemporalPlanner::ComparePolicies(
    const ObjectiveSpec& spec,
    const std::vector<ReselectPolicy>& policies,
    std::string_view solver) const {
  // One walk per policy, in parallel: the walks are independent and the
  // planner is immutable after Create (the pre-built evaluators are
  // only cloned). Results land by policy index, so row order — and
  // every number in the rows — is the same at any thread count.
  std::vector<TemporalRunResult> runs(policies.size());
  CV_RETURN_IF_ERROR(
      ParallelForStatus(policies.size(), [&](size_t i) -> Status {
        CV_ASSIGN_OR_RETURN(runs[i], Run(spec, policies[i], solver));
        return Status::OK();
      }));
  return runs;
}

}  // namespace cloudview
