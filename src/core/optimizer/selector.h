// ViewSelector: the paper's Section 5 optimization process.
//
// Three objective functions over the candidate set Vcand:
//   MV1 (budget limit Bl):    minimize time    s.t. C <= Bl   (Formula 13)
//   MV2 (time limit Tl):      minimize C       s.t. T <= Tl   (Formula 14)
//   MV3 (tradeoff, alpha):    minimize alpha*T + (1-alpha)*C  (Formula 15)
//
// All three are one generic constrained-optimization problem: minimize a
// lexicographic (constraint violation, primary objective, tie-breaker)
// score over subsets of Vcand. How the subset space is *searched* is a
// pluggable strategy: ViewSelector looks the solver up by name in the
// SolverRegistry (see solver.h) and runs it against a SolverContext that
// carries the scenario scoring plus the shared evaluation memo. The
// built-in strategies are "knapsack-dp" (the paper's DP + exact repair),
// "greedy", "exhaustive", "annealing", "local-search" and "portfolio"
// (parallel multi-start; DESIGN.md §9).
//
// MV3 mixes hours with dollars; we evaluate the blend on
// baseline-normalized terms (T/T0, C/C0) so alpha is a unit-free
// preference weight (DESIGN.md §5.8). The raw blend is also reported.

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "catalog/architecture.h"
#include "common/cancellation.h"
#include "common/data_size.h"
#include "common/duration.h"
#include "common/money.h"
#include "common/result.h"
#include "core/optimizer/evaluator.h"
#include "core/optimizer/pareto.h"

namespace cloudview {

/// \brief Which of the paper's three scenarios to optimize.
enum class Scenario { kMV1BudgetLimit, kMV2TimeLimit, kMV3Tradeoff };

const char* ToString(Scenario scenario);

/// \brief The registry name of the paper's primary solver.
inline constexpr std::string_view kDefaultSolverName = "knapsack-dp";

/// \brief Scenario parameters.
struct ObjectiveSpec {
  Scenario scenario = Scenario::kMV3Tradeoff;
  /// MV1: the financial budget Bl.
  Money budget_limit;
  /// MV2: the response-time limit Tl.
  Duration time_limit;
  /// MV3: weight on time (1 - alpha weighs cost).
  double alpha = 0.5;
  /// Time metric: when true (default) the workload-run response time
  /// includes one-time view materialization (the Section 6 experiments'
  /// MV1 semantics); when false, pure TprocessingQ (Formula 9, the MV2
  /// constraint as written).
  bool time_includes_materialization = true;
  /// MV3 normalization overrides: when nonzero, T/C are normalized by
  /// these instead of this evaluator's own baseline. Used when comparing
  /// deployments (e.g. instance tiers) against one common reference.
  Duration mv3_reference_time = Duration::Zero();
  Money mv3_reference_cost = Money::Zero();

  // --- Hard constraints (DESIGN.md §10) --------------------------------
  // Orthogonal to the scenario's own objective: every registered solver
  // treats a violation as lexicographically worse than any feasible
  // subset (SolverContext folds them into the score's violation term),
  // and SelectionResult::feasible reports them. Zero means
  // unconstrained.

  /// Cap on the total cost normalized to one month of the billed
  /// storage period ("$X/month budget").
  Money max_monthly_cost = Money::Zero();
  /// Cap on the duplicated bytes stored for the selected views.
  DataSize max_storage = DataSize::Zero();
  /// Cap on the workload-run makespan (processing + one-time
  /// materialization), regardless of the scenario's time metric.
  Duration max_makespan = Duration::Zero();

  /// Relative dedup tolerance for the frontier the multi-objective
  /// solvers return (see ParetoFront); ignored by single-objective
  /// strategies.
  double frontier_epsilon = 1e-6;

  // --- Joint architecture search ("arch-sweep" only) -------------------

  /// Deployment architectures to race (catalog/architecture.h). Empty
  /// means DefaultArchitectureRoster(). Architectures that do not lower
  /// against the deployment's sheet/instance (e.g. a reserved plan on a
  /// sheet without reserved rates) are skipped deterministically.
  std::vector<ArchitectureSpec> architectures;
  /// Single-objective strategy the arch-sweep runs per architecture;
  /// empty means kDefaultSolverName.
  std::string architecture_inner_solver;

  /// Cooperative cancellation (DESIGN.md §14): when non-null, solvers
  /// poll the token (SolverContext::Cancelled) in their inner loops and
  /// truncate the search like a node-budget cutoff — the best incumbent
  /// found so far is still finalized and SelectionResult::cancelled is
  /// set. Riding on the spec (not serialized, not compared) means every
  /// existing fan-out path — portfolio starts, branch-and-bound jobs,
  /// provider sweeps — forwards it without new plumbing. Borrowed: the
  /// token must outlive the solve.
  const CancelToken* cancel = nullptr;
};

/// \brief The selected view set and how it scores.
struct SelectionResult {
  SubsetEvaluation evaluation;
  /// False when the scenario constraint or a hard constraint cannot be
  /// met even by the best subset; `evaluation` then holds the
  /// best-effort subset.
  bool feasible = true;
  /// MV3 only: the normalized blended objective of the selection.
  double objective_value = 0.0;
  /// Registry name of the solver that produced this selection.
  std::string solver;

  /// \brief The time metric the objective used (makespan or processing).
  Duration time;

  /// \brief The selection's position in the (monthly cost, time,
  /// storage) objective space (DESIGN.md §10).
  MultiScore multi;

  /// \brief Multi-objective strategies only ("pareto-sweep",
  /// "pareto-genetic"): the non-dominated frontier discovered during the
  /// solve, in ParetoPoint order. Empty for single-objective solvers.
  std::vector<ParetoPoint> frontier;

  /// \brief "arch-sweep" only: the deployment architecture the winning
  /// selection is billed under. Empty for every other strategy (the
  /// evaluator's fixed architecture applies).
  std::string architecture;

  /// \brief True when the solve was truncated by the spec's CancelToken
  /// (explicit cancel or deadline): `evaluation` then holds the best
  /// incumbent found before the cutoff, exactly re-evaluated.
  bool cancelled = false;

  /// \brief Optimality-gap certificate in [0, 1]: 0 when the selection
  /// is proven optimal (or the solver is heuristic and ran to
  /// completion), 1 when nothing is certified. Branch-and-bound fills
  /// this from its smallest unexplored lower bound (SearchStats);
  /// truncated heuristics report 1.
  double gap_fraction = 0.0;
};

/// \brief Solves the three scenarios against a SelectionEvaluator by
/// dispatching to a registered solver strategy.
///
/// Concurrency contract (DESIGN.md §9): one selector per task. Solve()
/// is const but memoizing — subset evaluations accumulate in the
/// per-selector EvaluationCache across calls — so two threads must not
/// share one selector (or its evaluator). Parallel searches do not
/// share selectors at all: the "portfolio" solver and the comparison
/// sweeps give every task its own SolverContext + EvaluationCache over
/// a SelectionEvaluator::Clone(), which shares only the immutable
/// timing tables. Memoization never changes results, only speed.
class ViewSelector {
 public:
  /// \brief Keeps a reference; `evaluator` must outlive the selector.
  /// `external_cache` (optional) replaces the selector's own memo — the
  /// serving layer's cross-request warm-start seam: a session hands the
  /// same cache to every solve on a workload, so repeat tenants hit
  /// entries earlier requests paid for (DESIGN.md §14). The cache must
  /// outlive the selector and obeys the same one-task-at-a-time
  /// contract as the selector itself.
  explicit ViewSelector(const SelectionEvaluator& evaluator,
                        EvaluationCache* external_cache = nullptr)
      : evaluator_(&evaluator), external_cache_(external_cache) {}

  /// \brief Runs the scenario with the named solver (see
  /// SolverRegistry::Names() for what is available). NotFound for an
  /// unregistered name. Evaluations are memoized across calls on the
  /// same selector, so sweeping specs or comparing solvers is cheap.
  Result<SelectionResult> Solve(
      const ObjectiveSpec& spec,
      std::string_view solver = kDefaultSolverName) const;

  /// \brief MV3's normalized blend for a given evaluation.
  double TradeoffObjective(const ObjectiveSpec& spec,
                           const SubsetEvaluation& eval) const;

 private:
  const SelectionEvaluator* evaluator_;
  EvaluationCache* external_cache_ = nullptr;
  /// Subset evaluations are spec-independent; share them across runs.
  /// thread-compat: unsynchronized memo — one selector per thread
  /// (DESIGN.md §9.2); parallel fan-outs build per-task contexts.
  mutable EvaluationCache cache_;
};

}  // namespace cloudview

