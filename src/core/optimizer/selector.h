// ViewSelector: the paper's Section 5 optimization process.
//
// Three objective functions over the candidate set Vcand:
//   MV1 (budget limit Bl):    minimize time    s.t. C <= Bl   (Formula 13)
//   MV2 (time limit Tl):      minimize C       s.t. T <= Tl   (Formula 14)
//   MV3 (tradeoff, alpha):    minimize alpha*T + (1-alpha)*C  (Formula 15)
//
// The primary solver is the paper's 0/1 knapsack DP over additive
// standalone benefits, followed by an exact interaction-aware repair and
// improvement pass. Greedy and exhaustive solvers are provided as the
// baseline and the ground truth for ablation.
//
// MV3 mixes hours with dollars; we evaluate the blend on
// baseline-normalized terms (T/T0, C/C0) so alpha is a unit-free
// preference weight (DESIGN.md §5.8). The raw blend is also reported.

#ifndef CLOUDVIEW_CORE_OPTIMIZER_SELECTOR_H_
#define CLOUDVIEW_CORE_OPTIMIZER_SELECTOR_H_

#include <array>
#include <cstdint>
#include <functional>
#include <string>

#include "common/duration.h"
#include "common/money.h"
#include "common/result.h"
#include "core/optimizer/evaluator.h"

namespace cloudview {

/// \brief Which of the paper's three scenarios to optimize.
enum class Scenario { kMV1BudgetLimit, kMV2TimeLimit, kMV3Tradeoff };

const char* ToString(Scenario scenario);

/// \brief How to search the subset space.
enum class SolverKind {
  /// The paper's knapsack DP + exact repair.
  kKnapsackDP,
  /// Benefit-per-dollar hill climbing (baseline).
  kGreedy,
  /// Full enumeration (<= 20 candidates); ground truth for tests.
  kExhaustive,
  /// Simulated annealing (see annealing.h); escapes local optima on
  /// rugged instances.
  kAnnealing,
};

const char* ToString(SolverKind kind);

/// \brief Scenario parameters.
struct ObjectiveSpec {
  Scenario scenario = Scenario::kMV3Tradeoff;
  /// MV1: the financial budget Bl.
  Money budget_limit;
  /// MV2: the response-time limit Tl.
  Duration time_limit;
  /// MV3: weight on time (1 - alpha weighs cost).
  double alpha = 0.5;
  /// Time metric: when true (default) the workload-run response time
  /// includes one-time view materialization (the Section 6 experiments'
  /// MV1 semantics); when false, pure TprocessingQ (Formula 9, the MV2
  /// constraint as written).
  bool time_includes_materialization = true;
  /// MV3 normalization overrides: when nonzero, T/C are normalized by
  /// these instead of this evaluator's own baseline. Used when comparing
  /// deployments (e.g. instance tiers) against one common reference.
  Duration mv3_reference_time = Duration::Zero();
  Money mv3_reference_cost = Money::Zero();
};

/// \brief The selected view set and how it scores.
struct SelectionResult {
  SubsetEvaluation evaluation;
  /// False when the constraint cannot be met even by the best subset;
  /// `evaluation` then holds the best-effort subset.
  bool feasible = true;
  /// MV3 only: the normalized blended objective of the selection.
  double objective_value = 0.0;
  SolverKind solver = SolverKind::kKnapsackDP;

  /// \brief The time metric the objective used (makespan or processing).
  Duration time;
};

/// \brief Solves the three scenarios against a SelectionEvaluator.
class ViewSelector {
 public:
  /// \brief Keeps a reference; `evaluator` must outlive the selector.
  explicit ViewSelector(const SelectionEvaluator& evaluator)
      : evaluator_(&evaluator) {}

  /// \brief Runs the scenario with the given solver.
  Result<SelectionResult> Solve(const ObjectiveSpec& spec,
                                SolverKind solver) const;

  /// \brief MV3's normalized blend for a given evaluation.
  double TradeoffObjective(const ObjectiveSpec& spec,
                           const SubsetEvaluation& eval) const;

 private:
  /// Lexicographic move score: (constraint violation, primary objective,
  /// tie-breaker); lower is better, violation 0 means feasible.
  using Score = std::array<int64_t, 3>;
  using ScoreFn = std::function<Score(const SubsetEvaluation&)>;

  Duration TimeMetric(const ObjectiveSpec& spec,
                      const SubsetEvaluation& eval) const;

  /// Exact hill climbing over single add/remove moves until no move
  /// improves the score.
  Result<SubsetEvaluation> LocalSearch(SubsetEvaluation start,
                                       const ScoreFn& score) const;

  Result<SelectionResult> SolveMV1(const ObjectiveSpec& spec,
                                   SolverKind solver) const;
  Result<SelectionResult> SolveMV2(const ObjectiveSpec& spec,
                                   SolverKind solver) const;
  Result<SelectionResult> SolveMV3(const ObjectiveSpec& spec,
                                   SolverKind solver) const;

  Result<SelectionResult> ExhaustiveSearch(const ObjectiveSpec& spec) const;

  const SelectionEvaluator* evaluator_;
};

}  // namespace cloudview

#endif  // CLOUDVIEW_CORE_OPTIMIZER_SELECTOR_H_
