// 0/1 knapsack solvers — the paper's Section 5.2 optimization kernel
// ("we solve the Knapsack 0/1 problem ... we have opted for a dynamic
// programming approach").
//
// Two duals are provided, both by DP with capacity discretization:
//  * MaximizeValue: max total value with total weight <= capacity
//    (MV1: max time saved within the leftover budget).
//  * MinimizeWeightForValue: min total weight with total value >= target
//    (MV2: cheapest view set achieving the required time saving).

#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace cloudview {

/// \brief One knapsack item. Weights and values are caller-scaled
/// integers (micro-dollars / milliseconds in the selector).
struct KnapsackItem {
  int64_t weight = 0;
  int64_t value = 0;
};

/// \brief Chosen item indices plus exact totals (recomputed from the
/// items, not from the discretized DP table).
struct KnapsackSolution {
  std::vector<size_t> selected;
  int64_t total_weight = 0;
  int64_t total_value = 0;
};

/// \brief Knobs shared by both DPs.
struct KnapsackOptions {
  /// The weight axis is discretized into at most this many buckets
  /// (rounding weights *up*, so the capacity constraint stays sound).
  int64_t max_buckets = 4096;
};

/// \brief Max total value subject to total weight <= capacity.
/// Zero/negative-weight items with positive value are always taken;
/// non-positive-value items never are. Returns InvalidArgument for a
/// negative capacity.
Result<KnapsackSolution> MaximizeValue(const std::vector<KnapsackItem>& items,
                                       int64_t capacity,
                                       const KnapsackOptions& options = {});

/// \brief Min total weight subject to total value >= target. Returns
/// NotFound when even the full item set misses the target.
Result<KnapsackSolution> MinimizeWeightForValue(
    const std::vector<KnapsackItem>& items, int64_t target_value,
    const KnapsackOptions& options = {});

}  // namespace cloudview

