// "exhaustive": full subset enumeration — the ground truth the other
// strategies are measured against (tests and bench_solvers gap tables).
//
// Enumerates in Gray-code order so consecutive subsets differ by one
// toggle: each probe is an O(queries) incremental SubsetState move
// instead of a from-scratch rebuild, which is what makes 2^20 subsets
// tractable. The winner is re-evaluated exactly by Finalize().

#include <vector>

#include "core/optimizer/solver.h"

namespace cloudview {
namespace {

class ExhaustiveSolver : public Solver {
 public:
  std::string_view name() const override { return "exhaustive"; }
  std::string_view description() const override {
    return "full enumeration (<= 20 candidates); ground truth";
  }

  Result<SelectionResult> Solve(const ObjectiveSpec& spec,
                                SolverContext& context) const override {
    (void)spec;
    size_t n = context.num_candidates();
    if (n > 20) {
      return Status::InvalidArgument(
          "exhaustive search supports at most 20 candidates");
    }
    // The walk visits each subset exactly once; memoizing 2^n
    // single-use entries would only bloat the shared cache.
    context.set_use_cache(false);

    SubsetState state(context.evaluator());
    CV_ASSIGN_OR_RETURN(SolverContext::Score best_score,
                        context.ScoreState(state));
    std::vector<size_t> best = state.Selected();

    // Gray-code walk: subset i is mask i ^ (i >> 1); stepping from i-1
    // to i toggles exactly bit ctz(i).
    for (uint64_t i = 1; i < (uint64_t{1} << n); ++i) {
      state.Toggle(static_cast<size_t>(__builtin_ctzll(i)));
      CV_ASSIGN_OR_RETURN(SolverContext::Score score,
                          context.ScoreState(state));
      if (score < best_score) {
        best_score = score;
        best = state.Selected();
      }
    }
    return context.Finalize(best);
  }
};

CLOUDVIEW_REGISTER_SOLVER(ExhaustiveSolver)

}  // namespace
}  // namespace cloudview
