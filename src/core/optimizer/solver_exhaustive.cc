// "exhaustive": full subset enumeration — the ground truth the other
// strategies are measured against (tests and bench_solvers gap tables).
//
// Enumerates in Gray-code order so consecutive subsets differ by one
// toggle: each probe is an O(queries) incremental SubsetState move
// instead of a from-scratch rebuild, which is what makes 2^20 subsets
// tractable. The winner is re-evaluated exactly by Finalize().
//
// Ties resolve to the lexicographically smallest selected-index vector
// — the project-wide exact-solver tie-break (DESIGN.md §13.3), shared
// with "branch-and-bound" so the two agree bit-for-bit wherever both
// run, not just score-for-score.

#include <vector>

#include "common/str_format.h"
#include "core/optimizer/solver.h"

namespace cloudview {
namespace {

class ExhaustiveSolver : public Solver {
 public:
  static constexpr size_t kMaxCandidates = 20;

  std::string_view name() const override { return "exhaustive"; }
  std::string_view description() const override {
    return "full enumeration (<= 20 candidates); ground truth";
  }
  size_t max_candidates() const override { return kMaxCandidates; }

  Result<SelectionResult> Solve(const ObjectiveSpec& spec,
                                SolverContext& context) const override {
    (void)spec;
    size_t n = context.num_candidates();
    if (n > kMaxCandidates) {
      // Direct callers that bypassed the registry's max_candidates()
      // check still get an actionable message, not a bare failure.
      return Status::InvalidArgument(
          StrFormat("exhaustive search supports at most %zu candidates, "
                    "got %zu; use \"branch-and-bound\" for exact solves "
                    "past that wall",
                    kMaxCandidates, n));
    }
    // The walk visits each subset exactly once; memoizing 2^n
    // single-use entries would only bloat the shared cache.
    context.set_use_cache(false);

    SubsetState state(context.evaluator());
    CV_ASSIGN_OR_RETURN(SolverContext::Score best_score,
                        context.ScoreState(state));
    std::vector<size_t> best = state.Selected();

    // Gray-code walk: subset i is mask i ^ (i >> 1); stepping from i-1
    // to i toggles exactly bit ctz(i).
    for (uint64_t i = 1; i < (uint64_t{1} << n); ++i) {
      state.Toggle(static_cast<size_t>(__builtin_ctzll(i)));
      CV_ASSIGN_OR_RETURN(SolverContext::Score score,
                          context.ScoreState(state));
      if (score > best_score) continue;
      if (score < best_score) {
        best_score = score;
        best = state.Selected();
        continue;
      }
      // Equal score: keep the lexicographically smallest subset. The
      // Selected() materialization only happens on exact ties.
      std::vector<size_t> selected = state.Selected();
      if (selected < best) best = std::move(selected);
    }
    return context.Finalize(best);
  }
};

CLOUDVIEW_REGISTER_SOLVER(ExhaustiveSolver)

}  // namespace
}  // namespace cloudview
