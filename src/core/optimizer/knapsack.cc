#include "core/optimizer/knapsack.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace cloudview {

namespace {

constexpr int64_t kNegInf = std::numeric_limits<int64_t>::min() / 4;
constexpr int64_t kPosInf = std::numeric_limits<int64_t>::max() / 4;

// Rounds `x` up to a multiple of `scale`, in scale units.
int64_t ScaleUp(int64_t x, int64_t scale) {
  return (x + scale - 1) / scale;
}

void FinalizeTotals(const std::vector<KnapsackItem>& items,
                    KnapsackSolution* solution) {
  std::sort(solution->selected.begin(), solution->selected.end());
  solution->total_weight = 0;
  solution->total_value = 0;
  for (size_t i : solution->selected) {
    solution->total_weight += items[i].weight;
    solution->total_value += items[i].value;
  }
}

}  // namespace

Result<KnapsackSolution> MaximizeValue(const std::vector<KnapsackItem>& items,
                                       int64_t capacity,
                                       const KnapsackOptions& options) {
  if (capacity < 0) {
    return Status::InvalidArgument("knapsack capacity is negative");
  }
  if (options.max_buckets <= 0) {
    return Status::InvalidArgument("max_buckets must be positive");
  }

  KnapsackSolution solution;
  // Free wins first: non-positive weight with positive value. Negative
  // weights enlarge the remaining capacity.
  std::vector<size_t> dp_items;
  for (size_t i = 0; i < items.size(); ++i) {
    if (items[i].value <= 0) continue;
    if (items[i].weight <= 0) {
      solution.selected.push_back(i);
      capacity += -items[i].weight;
    } else {
      dp_items.push_back(i);
    }
  }

  if (!dp_items.empty() && capacity > 0) {
    int64_t scale = std::max<int64_t>(
        1, ScaleUp(capacity, options.max_buckets));
    int64_t cap_buckets = capacity / scale;  // Floor: stays sound.
    size_t n = dp_items.size();
    size_t width = static_cast<size_t>(cap_buckets) + 1;
    // Two rolling rows instead of an (n+1)-row table — the full table
    // cost more to zero than the DP itself on small item sets — plus a
    // byte per cell recording "item i improved bucket b" for the
    // reconstruction walk. Same recurrence, same picks.
    std::vector<int64_t> prev(width, 0);
    std::vector<int64_t> cur(width, 0);
    std::vector<uint8_t> took(n * width, 0);
    for (size_t i = 0; i < n; ++i) {
      const KnapsackItem& item = items[dp_items[i]];
      int64_t w = ScaleUp(item.weight, scale);  // Round up: stays sound.
      uint8_t* took_row = took.data() + i * width;
      for (int64_t b = 0; b <= cap_buckets; ++b) {
        cur[b] = prev[b];
        if (w <= b && prev[b - w] + item.value > cur[b]) {
          cur[b] = prev[b - w] + item.value;
          took_row[b] = 1;
        }
      }
      prev.swap(cur);
    }
    // Reconstruct.
    int64_t b = cap_buckets;
    for (size_t i = n; i-- > 0;) {
      if (took[i * width + b]) {
        solution.selected.push_back(dp_items[i]);
        b -= ScaleUp(items[dp_items[i]].weight, scale);
      }
    }
  }

  FinalizeTotals(items, &solution);
  return solution;
}

Result<KnapsackSolution> MinimizeWeightForValue(
    const std::vector<KnapsackItem>& items, int64_t target_value,
    const KnapsackOptions& options) {
  if (options.max_buckets <= 0) {
    return Status::InvalidArgument("max_buckets must be positive");
  }
  KnapsackSolution solution;
  if (target_value <= 0) {
    FinalizeTotals(items, &solution);
    return solution;  // Already satisfied by the empty set.
  }

  // Items that help: positive value. Among them, non-positive weights are
  // free — take them all, shrink the target.
  std::vector<size_t> dp_items;
  int64_t remaining_target = target_value;
  for (size_t i = 0; i < items.size(); ++i) {
    if (items[i].value <= 0) continue;
    if (items[i].weight <= 0) {
      solution.selected.push_back(i);
      remaining_target -= items[i].value;
    } else {
      dp_items.push_back(i);
    }
  }

  if (remaining_target > 0) {
    int64_t scale = std::max<int64_t>(
        1, ScaleUp(remaining_target, options.max_buckets));
    // Rounding values down keeps "value >= target" sound.
    int64_t target_buckets = ScaleUp(remaining_target, scale);
    size_t n = dp_items.size();
    size_t width = static_cast<size_t>(target_buckets) + 1;
    // dp row j: min weight reaching >= j value buckets (j saturates at
    // target_buckets). Two rolling rows plus a took-byte per cell (see
    // MaximizeValue) — identical recurrence and picks, far less memory
    // traffic than the full (n+1)-row table.
    std::vector<int64_t> prev(width, kPosInf);
    std::vector<int64_t> cur(width, kPosInf);
    std::vector<uint8_t> took(n * width, 0);
    prev[0] = 0;
    for (size_t i = 0; i < n; ++i) {
      const KnapsackItem& item = items[dp_items[i]];
      int64_t v = item.value / scale;  // Round down: stays sound.
      uint8_t* took_row = took.data() + i * width;
      for (int64_t j = 0; j <= target_buckets; ++j) {
        cur[j] = prev[j];
        int64_t from = std::max<int64_t>(0, j - v);
        if (prev[from] != kPosInf && prev[from] + item.weight < cur[j]) {
          cur[j] = prev[from] + item.weight;
          took_row[j] = 1;
        }
      }
      prev.swap(cur);
    }
    if (prev[target_buckets] == kPosInf) {
      return Status::NotFound(
          "no item subset reaches the required value");
    }
    // Reconstruct.
    int64_t j = target_buckets;
    for (size_t i = n; i-- > 0;) {
      if (took[i * width + j]) {
        const KnapsackItem& item = items[dp_items[i]];
        solution.selected.push_back(dp_items[i]);
        j = std::max<int64_t>(0, j - item.value / scale);
      }
    }
  }

  FinalizeTotals(items, &solution);
  return solution;
}

}  // namespace cloudview
