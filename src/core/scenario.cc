#include "core/scenario.h"

#include <utility>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "pricing/provider_registry.h"

namespace cloudview {

double ScenarioRun::TimeImprovement(const ObjectiveSpec& spec) const {
  // The baseline has no views, so its makespan equals its processing
  // time; either metric reads the same.
  Duration base = spec.time_includes_materialization
                      ? baseline.makespan
                      : baseline.processing_time;
  if (base.is_zero()) return 0.0;
  return 1.0 - static_cast<double>(selection.time.millis()) /
                   static_cast<double>(base.millis());
}

double ScenarioRun::CostImprovement() const {
  Money base = baseline.cost.total();
  if (base.is_zero()) return 0.0;
  return 1.0 -
         static_cast<double>(selection.evaluation.cost.total().micros()) /
             static_cast<double>(base.micros());
}

Result<CloudScenario> CloudScenario::Create(ScenarioConfig config) {
  CloudScenario scenario(std::move(config));
  CV_ASSIGN_OR_RETURN(StarSchema schema,
                      MakeSalesSchema(scenario.config_.sales));
  CV_ASSIGN_OR_RETURN(CubeLattice lattice,
                      CubeLattice::Build(std::move(schema)));
  scenario.lattice_ = std::make_unique<CubeLattice>(std::move(lattice));
  scenario.simulator_ = std::make_unique<MapReduceSimulator>(
      *scenario.lattice_, scenario.config_.mapreduce);
  if (scenario.config_.pricing.has_value()) {
    // Deprecated shim: an explicit model bypasses the registry lookup,
    // but the configured overrides still apply — the shim must behave
    // exactly like selecting the same sheet by name.
    scenario.pricing_ = std::make_unique<PricingModel>(
        scenario.config_.pricing->WithOverrides(
            scenario.config_.pricing_overrides));
  } else {
    CV_ASSIGN_OR_RETURN(
        PricingModel model,
        ProviderRegistry::Global().Model(scenario.config_.provider));
    scenario.pricing_ = std::make_unique<PricingModel>(
        model.WithOverrides(scenario.config_.pricing_overrides));
  }
  scenario.cost_model_ =
      std::make_unique<CloudCostModel>(*scenario.pricing_);
  CV_ASSIGN_OR_RETURN(
      scenario.cluster_.instance,
      scenario.pricing_->instances().Find(scenario.config_.instance_name));
  if (scenario.config_.nb_instances <= 0) {
    return Status::InvalidArgument("nb_instances must be positive");
  }
  scenario.cluster_.nodes = scenario.config_.nb_instances;
  return scenario;
}

Result<Workload> CloudScenario::PaperWorkload() const {
  return MakePaperWorkload(*lattice_);
}

Result<DeploymentSpec> CloudScenario::MakeDeployment(
    const Workload& workload, const ClusterSpec& cluster) const {
  DeploymentSpec deployment;
  deployment.instance = cluster.instance;
  deployment.nb_instances = cluster.nodes;
  deployment.maintenance_cycles = config_.maintenance_cycles;
  deployment.single_compute_session = config_.single_compute_session;

  DataSize dataset = lattice_->schema().fact_size();
  deployment.base_storage = StorageTimeline(dataset);
  deployment.ingress.initial_dataset = dataset;

  if (config_.prorate_storage) {
    // Bill storage for the session: the no-view workload makespan,
    // the same for both arms so the comparison stays fair.
    Duration session = Duration::Zero();
    for (const QuerySpec& q : workload.queries()) {
      session += simulator_->QueryTimeFromFact(q.target, cluster) *
                 static_cast<int64_t>(q.frequency);
    }
    Months prorated = Months::FromDuration(session);
    deployment.storage_period =
        prorated < Months::FromMilli(1) ? Months::FromMilli(1) : prorated;
  } else {
    deployment.storage_period = config_.storage_period;
  }
  return deployment;
}

Result<ScenarioRun> CloudScenario::Run(const Workload& workload,
                                       const ObjectiveSpec& spec,
                                       std::string_view solver,
                                       const ClusterSpec* cluster_override)
    const {
  if (workload.empty()) {
    return Status::InvalidArgument("cannot run an empty workload");
  }
  const ClusterSpec& cluster =
      cluster_override != nullptr ? *cluster_override : cluster_;
  CV_ASSIGN_OR_RETURN(DeploymentSpec deployment,
                      MakeDeployment(workload, cluster));
  CV_ASSIGN_OR_RETURN(
      std::vector<ViewCandidate> candidates,
      GenerateCandidates(*lattice_, workload, *simulator_, cluster,
                         config_.candidates));
  CV_ASSIGN_OR_RETURN(
      SelectionEvaluator evaluator,
      SelectionEvaluator::Create(*lattice_, workload, *simulator_,
                                 cluster, *cost_model_, deployment,
                                 std::move(candidates)));
  ViewSelector selector(evaluator);
  CV_ASSIGN_OR_RETURN(SelectionResult selection,
                      selector.Solve(spec, solver));
  ScenarioRun run;
  run.selection = std::move(selection);
  run.baseline = evaluator.baseline();
  return run;
}

Result<std::vector<ProviderComparisonRow>> CloudScenario::CompareProviders(
    const Workload& workload, const ObjectiveSpec& spec,
    std::string_view solver) const {
  // One task per registered sheet: each rebuilds its own deployment
  // (scenario, evaluator, selector) from scratch, so the sweeps share
  // nothing but the immutable registries. Rows land by name index,
  // keeping the sorted provider order at any thread count.
  std::vector<std::string> names = ProviderRegistry::Global().Names();
  std::vector<ProviderComparisonRow> rows(names.size());
  CV_RETURN_IF_ERROR(ParallelForStatus(names.size(), [&](size_t i) {
    return CompareOneProvider(names[i], workload, spec, solver, rows[i]);
  }));
  return rows;
}

Result<CloudScenario> CloudScenario::ForProvider(
    const std::string& name, std::string* instance,
    BillingGranularity* granularity) const {
  CV_ASSIGN_OR_RETURN(PricingModel model,
                      ProviderRegistry::Global().Model(name));

  // Catalogs name their tiers differently: keep the configured
  // instance when this provider offers it, otherwise rent the
  // cheapest type matching the configured compute power.
  Result<InstanceType> type =
      model.instances().Find(config_.instance_name);
  if (!type.ok()) {
    type =
        model.instances().CheapestWithUnits(cluster_.instance.compute_units);
  }
  CV_RETURN_IF_ERROR(type.status());

  ScenarioConfig config = config_;
  config.pricing.reset();
  config.provider = name;
  // Native billing semantics: the comparison is between the sheets as
  // published, not between override combinations.
  config.pricing_overrides = PricingOverrides{};
  config.instance_name = type->name;
  *instance = type->name;
  *granularity = model.compute_granularity();
  return CloudScenario::Create(std::move(config));
}

Status CloudScenario::CompareOneProvider(const std::string& name,
                                         const Workload& workload,
                                         const ObjectiveSpec& spec,
                                         std::string_view solver,
                                         ProviderComparisonRow& row) const {
  row.provider = name;
  CV_ASSIGN_OR_RETURN(
      CloudScenario scenario,
      ForProvider(name, &row.instance, &row.granularity));
  CV_ASSIGN_OR_RETURN(row.run, scenario.Run(workload, spec, solver));
  return Status::OK();
}

Result<FrontierRun> CloudScenario::SolveFrontier(
    const Workload& workload, const ObjectiveSpec& spec,
    std::string_view solver) const {
  std::string_view frontier_solver =
      solver.empty() ? std::string_view(config_.frontier_solver) : solver;
  CV_ASSIGN_OR_RETURN(ScenarioRun run,
                      Run(workload, spec, frontier_solver));
  FrontierRun out;
  out.baseline = std::move(run.baseline);
  out.best = std::move(run.selection);
  out.frontier = std::move(out.best.frontier);
  out.best.frontier.clear();
  if (out.frontier.empty() && out.best.feasible) {
    // A single-objective strategy was named: degenerate to its one
    // operating point rather than returning an empty frontier.
    out.frontier.push_back(ParetoPoint{out.best.multi,
                                       out.best.evaluation.selected,
                                       out.best.solver});
  }
  return out;
}

Result<std::vector<ProviderFrontierRow>>
CloudScenario::CompareProviderFrontiers(const Workload& workload,
                                        const ObjectiveSpec& spec,
                                        std::string_view solver) const {
  // Mirrors CompareProviders: one shared-nothing task per registered
  // sheet, rows landing by sorted-name index. The frontier solve inside
  // each task fans out again; nested parallel regions are safe
  // (thread_pool.h) and drain on the same global pool.
  std::vector<std::string> names = ProviderRegistry::Global().Names();
  std::vector<ProviderFrontierRow> rows(names.size());
  CV_RETURN_IF_ERROR(ParallelForStatus(names.size(), [&](size_t i) {
    ProviderFrontierRow& row = rows[i];
    row.provider = names[i];
    CV_ASSIGN_OR_RETURN(
        CloudScenario scenario,
        ForProvider(names[i], &row.instance, &row.granularity));
    CV_ASSIGN_OR_RETURN(row.run,
                        scenario.SolveFrontier(workload, spec, solver));
    return Status::OK();
  }));
  return rows;
}

Result<TemporalRunResult> CloudScenario::RunTimeline(
    const WorkloadTimeline& timeline, const ObjectiveSpec& spec,
    const ReselectPolicy& policy, std::string_view solver) const {
  CV_ASSIGN_OR_RETURN(
      TemporalPlanner planner,
      TemporalPlanner::Create(*lattice_, *simulator_, cluster_,
                              *cost_model_, timeline,
                              config_.candidates,
                              config_.maintenance_cycles));
  return planner.Run(spec, policy, solver);
}

Result<std::vector<TemporalRunResult>>
CloudScenario::CompareReselectPolicies(
    const WorkloadTimeline& timeline, const ObjectiveSpec& spec,
    const std::vector<ReselectPolicy>& policies,
    std::string_view solver) const {
  CV_ASSIGN_OR_RETURN(
      TemporalPlanner planner,
      TemporalPlanner::Create(*lattice_, *simulator_, cluster_,
                              *cost_model_, timeline,
                              config_.candidates,
                              config_.maintenance_cycles));
  return planner.ComparePolicies(spec, policies, solver);
}

Result<SubsetEvaluation> CloudScenario::EvaluateWithoutViews(
    const Workload& workload, const ClusterSpec& cluster) const {
  CV_ASSIGN_OR_RETURN(DeploymentSpec deployment,
                      MakeDeployment(workload, cluster));
  CV_ASSIGN_OR_RETURN(
      SelectionEvaluator evaluator,
      SelectionEvaluator::Create(*lattice_, workload, *simulator_,
                                 cluster, *cost_model_, deployment, {}));
  return evaluator.baseline();
}

Result<ClusterSpec> CloudScenario::CheapestClusterMeeting(
    const Workload& workload, Duration limit) const {
  const ClusterSpec base_cluster = cluster_;
  Result<ClusterSpec> best = Status::NotFound(
      "no instance type meets the time limit");
  Money best_cost;
  for (const InstanceType& type : pricing_->instances().types()) {
    ClusterSpec candidate{type, base_cluster.nodes};
    CV_ASSIGN_OR_RETURN(SubsetEvaluation eval,
                        EvaluateWithoutViews(workload, candidate));
    if (eval.processing_time > limit) continue;
    Money cost = eval.cost.total();
    if (!best.ok() || cost < best_cost) {
      best = candidate;
      best_cost = cost;
    }
  }
  return best;
}

}  // namespace cloudview
