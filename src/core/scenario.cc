#include "core/scenario.h"

#include <utility>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "pricing/provider_registry.h"

namespace cloudview {

Result<CloudScenario> CloudScenario::Create(ScenarioConfig config) {
  if (config.pricing.has_value()) {
    return Status::InvalidArgument(
        "ScenarioConfig::pricing was removed: select the sheet by name "
        "via ScenarioConfig::provider (registering custom sheets with "
        "ProviderRegistry) and layer pricing_overrides on top");
  }
  CloudScenario scenario(std::move(config));
  Result<StarSchema> schema =
      scenario.config_.schema == "sales"
          ? MakeSalesSchema(scenario.config_.sales)
      : scenario.config_.schema == "ssb"
          ? MakeSsbSchema(scenario.config_.ssb)
          : Result<StarSchema>(Status::InvalidArgument(
                "unknown ScenarioConfig::schema \"" +
                scenario.config_.schema + "\"; expected sales or ssb"));
  CV_RETURN_IF_ERROR(schema.status());
  CV_ASSIGN_OR_RETURN(CubeLattice lattice,
                      CubeLattice::Build(schema.MoveValue()));
  scenario.lattice_ = std::make_unique<CubeLattice>(std::move(lattice));
  scenario.simulator_ = std::make_unique<MapReduceSimulator>(
      *scenario.lattice_, scenario.config_.mapreduce);
  CV_ASSIGN_OR_RETURN(
      PricingModel model,
      ProviderRegistry::Global().Model(scenario.config_.provider));
  scenario.pricing_ = std::make_unique<PricingModel>(
      model.WithOverrides(scenario.config_.pricing_overrides));
  scenario.cost_model_ =
      std::make_unique<CloudCostModel>(*scenario.pricing_);
  CV_ASSIGN_OR_RETURN(
      scenario.cluster_.instance,
      scenario.pricing_->instances().Find(scenario.config_.instance_name));
  if (scenario.config_.nb_instances <= 0) {
    return Status::InvalidArgument("nb_instances must be positive");
  }
  scenario.cluster_.nodes = scenario.config_.nb_instances;
  return scenario;
}

Result<Workload> CloudScenario::PaperWorkload() const {
  if (config_.schema != "sales") {
    return Status::InvalidArgument(
        "the paper workload targets the sales schema; this scenario "
        "uses \"" +
        config_.schema + "\" (see DefaultWorkload)");
  }
  return MakePaperWorkload(*lattice_);
}

Result<Workload> CloudScenario::DefaultWorkload() const {
  return config_.schema == "ssb" ? MakeSsbWorkload(*lattice_)
                                 : MakePaperWorkload(*lattice_);
}

Result<DeploymentSpec> CloudScenario::MakeDeployment(
    const Workload& workload, const ClusterSpec& cluster) const {
  DeploymentSpec deployment;
  deployment.instance = cluster.instance;
  deployment.nb_instances = cluster.nodes;
  deployment.maintenance_cycles = config_.maintenance_cycles;
  deployment.single_compute_session = config_.single_compute_session;

  DataSize dataset = lattice_->schema().fact_size();
  deployment.base_storage = StorageTimeline(dataset);
  deployment.ingress.initial_dataset = dataset;

  if (config_.prorate_storage) {
    // Bill storage for the session: the no-view workload makespan,
    // the same for both arms so the comparison stays fair.
    Duration session = Duration::Zero();
    for (const QuerySpec& q : workload.queries()) {
      session += simulator_->QueryTimeFromFact(q.target, cluster) *
                 static_cast<int64_t>(q.frequency);
    }
    Months prorated = Months::FromDuration(session);
    deployment.storage_period =
        prorated < Months::FromMilli(1) ? Months::FromMilli(1) : prorated;
  } else {
    deployment.storage_period = config_.storage_period;
  }
  return deployment;
}

// The five legacy facade methods are thin shims over Dispatch
// (core/advisor.cc): each packs its arguments into an AdvisorRequest
// via the in-process borrowed-pointer fast path and unpacks the
// matching payload. advisor_dispatch_test pins the bit-identity of the
// two surfaces.

Result<ScenarioRun> CloudScenario::Run(const Workload& workload,
                                       const ObjectiveSpec& spec,
                                       std::string_view solver,
                                       const ClusterSpec* cluster_override)
    const {
  AdvisorRequest request;
  request.kind = AdvisorRequestKind::kSolve;
  request.solver = std::string(solver);
  request.objective = spec;
  request.inline_workload = &workload;
  request.cluster_override = cluster_override;
  CV_ASSIGN_OR_RETURN(AdvisorResponse response, Dispatch(request));
  return std::move(response.solve);
}

Result<JointRun> CloudScenario::SolveJoint(const Workload& workload,
                                           const ObjectiveSpec& spec,
                                           std::string_view solver) const {
  AdvisorRequest request;
  request.kind = AdvisorRequestKind::kSolveJoint;
  request.solver = std::string(solver);
  request.objective = spec;
  request.inline_workload = &workload;
  CV_ASSIGN_OR_RETURN(AdvisorResponse response, Dispatch(request));
  return std::move(response.joint);
}

Result<std::vector<ProviderComparisonRow>> CloudScenario::CompareProviders(
    const Workload& workload, const ObjectiveSpec& spec,
    std::string_view solver) const {
  AdvisorRequest request;
  request.kind = AdvisorRequestKind::kCompareProviders;
  request.solver = std::string(solver);
  request.objective = spec;
  request.inline_workload = &workload;
  CV_ASSIGN_OR_RETURN(AdvisorResponse response, Dispatch(request));
  return std::move(response.providers);
}

Result<CloudScenario> CloudScenario::ForProvider(
    const std::string& name, std::string* instance,
    BillingGranularity* granularity) const {
  CV_ASSIGN_OR_RETURN(PricingModel model,
                      ProviderRegistry::Global().Model(name));

  // Catalogs name their tiers differently: keep the configured
  // instance when this provider offers it, otherwise rent the
  // cheapest type matching the configured compute power.
  Result<InstanceType> type =
      model.instances().Find(config_.instance_name);
  if (!type.ok()) {
    type =
        model.instances().CheapestWithUnits(cluster_.instance.compute_units);
  }
  CV_RETURN_IF_ERROR(type.status());

  ScenarioConfig config = config_;
  config.provider = name;
  // Native billing semantics: the comparison is between the sheets as
  // published, not between override combinations.
  config.pricing_overrides = PricingOverrides{};
  config.instance_name = type->name;
  *instance = type->name;
  *granularity = model.compute_granularity();
  return CloudScenario::Create(std::move(config));
}

Status CloudScenario::CompareOneProvider(const std::string& name,
                                         const Workload& workload,
                                         const ObjectiveSpec& spec,
                                         std::string_view solver,
                                         ProviderComparisonRow& row) const {
  row.provider = name;
  CV_ASSIGN_OR_RETURN(
      CloudScenario scenario,
      ForProvider(name, &row.instance, &row.granularity));
  CV_ASSIGN_OR_RETURN(row.run, scenario.Run(workload, spec, solver));
  return Status::OK();
}

Result<FrontierRun> CloudScenario::SolveFrontier(
    const Workload& workload, const ObjectiveSpec& spec,
    std::string_view solver) const {
  AdvisorRequest request;
  request.kind = AdvisorRequestKind::kFrontier;
  request.solver = std::string(solver);
  request.objective = spec;
  request.inline_workload = &workload;
  CV_ASSIGN_OR_RETURN(AdvisorResponse response, Dispatch(request));
  return std::move(response.frontier);
}

Result<std::vector<ProviderFrontierRow>>
CloudScenario::CompareProviderFrontiers(const Workload& workload,
                                        const ObjectiveSpec& spec,
                                        std::string_view solver) const {
  // Mirrors CompareProviders: one shared-nothing task per registered
  // sheet, rows landing by sorted-name index. The frontier solve inside
  // each task fans out again; nested parallel regions are safe
  // (thread_pool.h) and drain on the same global pool.
  std::vector<std::string> names = ProviderRegistry::Global().Names();
  std::vector<ProviderFrontierRow> rows(names.size());
  CV_RETURN_IF_ERROR(ParallelForStatus(names.size(), [&](size_t i) {
    ProviderFrontierRow& row = rows[i];
    row.provider = names[i];
    CV_ASSIGN_OR_RETURN(
        CloudScenario scenario,
        ForProvider(names[i], &row.instance, &row.granularity));
    CV_ASSIGN_OR_RETURN(row.run,
                        scenario.SolveFrontier(workload, spec, solver));
    return Status::OK();
  }));
  return rows;
}

Result<TemporalRunResult> CloudScenario::RunTimeline(
    const WorkloadTimeline& timeline, const ObjectiveSpec& spec,
    const ReselectPolicy& policy, std::string_view solver) const {
  AdvisorRequest request;
  request.kind = AdvisorRequestKind::kTimeline;
  request.solver = std::string(solver);
  request.objective = spec;
  request.policy = policy;
  request.inline_timeline = &timeline;
  if (timeline.num_periods() == 0) {
    return Status::InvalidArgument("timeline has no periods");
  }
  // Dispatch resolves a workload for every kind; point it at the
  // timeline's base mix so no spec lookup happens.
  request.inline_workload = &timeline.period(0).workload;
  CV_ASSIGN_OR_RETURN(AdvisorResponse response, Dispatch(request));
  return std::move(response.timeline);
}

Result<std::vector<TemporalRunResult>>
CloudScenario::CompareReselectPolicies(
    const WorkloadTimeline& timeline, const ObjectiveSpec& spec,
    const std::vector<ReselectPolicy>& policies,
    std::string_view solver) const {
  AdvisorRequest request;
  request.kind = AdvisorRequestKind::kComparePolicies;
  request.solver = std::string(solver);
  request.objective = spec;
  request.policies = policies;
  request.inline_timeline = &timeline;
  if (timeline.num_periods() == 0) {
    return Status::InvalidArgument("timeline has no periods");
  }
  request.inline_workload = &timeline.period(0).workload;
  CV_ASSIGN_OR_RETURN(AdvisorResponse response, Dispatch(request));
  return std::move(response.policies);
}

Result<SubsetEvaluation> CloudScenario::EvaluateWithoutViews(
    const Workload& workload, const ClusterSpec& cluster) const {
  CV_ASSIGN_OR_RETURN(DeploymentSpec deployment,
                      MakeDeployment(workload, cluster));
  CV_ASSIGN_OR_RETURN(
      SelectionEvaluator evaluator,
      SelectionEvaluator::Create(*lattice_, workload, *simulator_,
                                 cluster, *cost_model_, deployment, {}));
  return evaluator.baseline();
}

Result<ClusterSpec> CloudScenario::CheapestClusterMeeting(
    const Workload& workload, Duration limit) const {
  const ClusterSpec base_cluster = cluster_;
  Result<ClusterSpec> best = Status::NotFound(
      "no instance type meets the time limit");
  Money best_cost;
  for (const InstanceType& type : pricing_->instances().types()) {
    ClusterSpec candidate{type, base_cluster.nodes};
    CV_ASSIGN_OR_RETURN(SubsetEvaluation eval,
                        EvaluateWithoutViews(workload, candidate));
    if (eval.processing_time > limit) continue;
    Money cost = eval.cost.total();
    if (!best.ok() || cost < best_cost) {
      best = candidate;
      best_cost = cost;
    }
  }
  return best;
}

}  // namespace cloudview
