// CloudScenario: one fully-wired deployment — dataset, lattice, simulated
// cluster, pricing — against which workloads are costed and view sets
// selected. This is the library's main entry point.

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/lattice.h"
#include "common/result.h"
#include "core/advisor.h"
#include "core/cost/cloud_cost_model.h"
#include "core/optimizer/candidate_generation.h"
#include "core/optimizer/evaluator.h"
#include "core/optimizer/selector.h"
#include "core/optimizer/temporal_planner.h"
#include "engine/cluster.h"
#include "engine/sales_generator.h"
#include "pricing/pricing_model.h"
#include "workload/ssb.h"
#include "workload/workload.h"

namespace cloudview {

/// \brief Everything that defines a deployment.
struct ScenarioConfig {
  /// Schema family: "sales" builds the paper's retail star from
  /// `sales`; "ssb" builds the Star Schema Benchmark lattice from
  /// `ssb` (workload/ssb.h — the serving benchmarks' smoke config).
  std::string schema = "sales";
  /// Dataset shape (defaults: the paper's 10 GB experimental subset).
  SalesConfig sales;
  /// SSB shape, read when schema == "ssb".
  SsbConfig ssb;
  /// Simulated-cluster timing constants.
  MapReduceParams mapreduce;
  /// CSP selection by ProviderRegistry name (see
  /// ProviderRegistry::Global().Names()).
  std::string provider = "aws-2012";
  /// Billing-semantic overrides applied to the registered sheet.
  /// Default: per-second compute billing (the Section 6 budgets are
  /// sub-dollar; see DESIGN.md §5.4). Examples reproducing the worked
  /// examples clear the granularity override to get the sheet's native
  /// started-hour billing.
  PricingOverrides pricing_overrides =
      PricingOverrides::ComputeGranularityOnly(BillingGranularity::kSecond);
  /// Removed: the pre-registry explicit-model shim. Setting it now
  /// makes Create() fail with InvalidArgument. Select the sheet by
  /// name via `provider` (registering custom sheets with
  /// ProviderRegistry) and layer `pricing_overrides` on top — the
  /// combination reproduces every deployment the shim could express.
  std::optional<PricingModel> pricing;
  /// Rented configuration (paper Section 6: five identical VMs).
  std::string instance_name = "small";
  int64_t nb_instances = 5;
  /// Storage period. When `prorate_storage` is true the period is derived
  /// from the workload's no-view makespan (experiment-session billing);
  /// otherwise `storage_period` is used as-is.
  bool prorate_storage = true;
  Months storage_period = Months::FromMonths(1);
  /// Candidate generation knobs.
  CandidateGenOptions candidates;
  /// Maintenance rounds billed within the period (0 = read-only period).
  int64_t maintenance_cycles = 0;
  /// Bill all compute of a run as one rental session (round the busy
  /// total up once instead of per activity).
  bool single_compute_session = false;
  /// Multi-objective strategy used by SolveFrontier and
  /// CompareProviderFrontiers when the call does not name one
  /// ("pareto-sweep" or "pareto-genetic"; DESIGN.md §10).
  std::string frontier_solver = "pareto-sweep";
};

/// \brief Legacy name for the kSolve payload; the struct itself (and
/// its sweep-row siblings FrontierRun / ProviderComparisonRow /
/// ProviderFrontierRow) moved to core/advisor.h with the API redesign.
/// Alias kept for one release.
using ScenarioRun = SolveRun;

/// \brief A wired-up deployment; build once, run many workloads.
class CloudScenario {
 public:
  static Result<CloudScenario> Create(ScenarioConfig config);

  /// \brief The one entry point behind every facade method below: a
  /// tagged AdvisorRequest in, a tagged AdvisorResponse (payload +
  /// ResponseMeta telemetry) out. `warm` (optional) is a session's
  /// warm-start slot — a matching slot skips candidate generation and
  /// evaluator construction and accumulates cache telemetry across
  /// requests; the caller serializes access to it. The facades and
  /// Dispatch produce bit-identical payloads (pinned by
  /// advisor_dispatch_test).
  Result<AdvisorResponse> Dispatch(const AdvisorRequest& request,
                                   AdvisorWarmSlot* warm = nullptr) const;

  const ScenarioConfig& config() const { return config_; }
  const CubeLattice& lattice() const { return *lattice_; }
  const MapReduceSimulator& simulator() const { return *simulator_; }
  const ClusterSpec& cluster() const { return cluster_; }
  const PricingModel& pricing() const { return *pricing_; }
  const CloudCostModel& cost_model() const { return *cost_model_; }

  /// \brief The paper's 10-query workload on this scenario's lattice.
  /// Fails on non-"sales" schemas; prefer DefaultWorkload().
  Result<Workload> PaperWorkload() const;

  /// \brief The schema family's canonical workload: the paper's
  /// 10-query mix ("sales") or the SSB 13-query flights ("ssb") — what
  /// a WorkloadSpec of kind "default" resolves to.
  Result<Workload> DefaultWorkload() const;

  /// \brief Selects views for `workload` under `spec` with the named
  /// registered solver (see SolverRegistry::Names()), returning the
  /// selection plus the no-view baseline. `cluster_override` (when
  /// non-null) replaces the configured cluster — used by sweeps over
  /// instance tiers (the paper's scalability-vs-views tradeoff).
  Result<ScenarioRun> Run(const Workload& workload,
                          const ObjectiveSpec& spec,
                          std::string_view solver = kDefaultSolverName,
                          const ClusterSpec* cluster_override = nullptr) const;

  /// \brief Re-costs one selection problem under every registered
  /// provider (the paper's Section 8 multi-CSP extension): for each
  /// ProviderRegistry name, this scenario's deployment is rebuilt on
  /// that sheet — with its *native* billing semantics, not this
  /// scenario's pricing_overrides — and Run() re-solves the selection.
  /// The configured instance name is kept when the provider's catalog
  /// has it; otherwise the cheapest type matching the configured
  /// instance's compute units is rented. Each sheet is evaluated on its
  /// own ThreadPool task (the rebuilt deployments share nothing but the
  /// immutable registries); rows come back in sorted provider-name
  /// order regardless of thread count.
  Result<std::vector<ProviderComparisonRow>> CompareProviders(
      const Workload& workload, const ObjectiveSpec& spec,
      std::string_view solver = kDefaultSolverName) const;

  /// \brief Solves the whole (monthly cost, time, storage) frontier for
  /// `workload` under `spec` with a multi-objective strategy (empty
  /// `solver` uses config().frontier_solver). Hard constraints in the
  /// spec bound the frontier; `best` is the spec's own optimum
  /// (DESIGN.md §10).
  Result<FrontierRun> SolveFrontier(const Workload& workload,
                                    const ObjectiveSpec& spec,
                                    std::string_view solver = {}) const;

  /// \brief Joint (deployment architecture, view set) optimization:
  /// races one solve per candidate architecture (empty `architectures`
  /// on the spec means DefaultArchitectureRoster()) via the
  /// "arch-sweep" strategy and returns the four-axis frontier (monthly
  /// cost, time, storage, unavailability) plus the winning pair. The
  /// scenario's own deployment must bill under the identity
  /// architecture (the default).
  Result<JointRun> SolveJoint(const Workload& workload,
                              const ObjectiveSpec& spec,
                              std::string_view solver = {}) const;

  /// \brief CompareProviders, frontier-aware: every registered sheet is
  /// rebuilt with its native billing semantics and SolveFrontier is
  /// re-run, so tenants can compare whole trade-off curves — not just
  /// one operating point — across CSPs. One ThreadPool task per sheet;
  /// rows in sorted provider order at any thread count.
  Result<std::vector<ProviderFrontierRow>> CompareProviderFrontiers(
      const Workload& workload, const ObjectiveSpec& spec,
      std::string_view solver = {}) const;

  /// \brief Walks `timeline` with a TemporalPlanner under `policy`,
  /// re-running the named registered solver on re-selection periods and
  /// charging transition costs plus horizon-long storage (DESIGN.md §8).
  /// `spec` is interpreted per period. Storage is billed on the
  /// timeline's own period clock (prorate_storage does not apply);
  /// maintenance_cycles is charged per period.
  Result<TemporalRunResult> RunTimeline(
      const WorkloadTimeline& timeline, const ObjectiveSpec& spec,
      const ReselectPolicy& policy,
      std::string_view solver = kDefaultSolverName) const;

  /// \brief RunTimeline for each policy on one shared planner — the
  /// static vs every-k vs on-drift comparison, in policy order (one
  /// parallel walk per policy; see TemporalPlanner::ComparePolicies).
  Result<std::vector<TemporalRunResult>> CompareReselectPolicies(
      const WorkloadTimeline& timeline, const ObjectiveSpec& spec,
      const std::vector<ReselectPolicy>& policies,
      std::string_view solver = kDefaultSolverName) const;

  /// \brief Deployment parameters for `workload` (storage timeline,
  /// period, cluster) — exposed for custom evaluations.
  Result<DeploymentSpec> MakeDeployment(const Workload& workload,
                                        const ClusterSpec& cluster) const;

  /// \brief No-view workload cost/time on an alternative cluster (the
  /// MV2 scale-up arm rents bigger instances instead of materializing).
  Result<SubsetEvaluation> EvaluateWithoutViews(
      const Workload& workload, const ClusterSpec& cluster) const;

  /// \brief Cheapest instance type (same node count) whose no-view
  /// processing time meets `limit`; NotFound when none does.
  Result<ClusterSpec> CheapestClusterMeeting(
      const Workload& workload, Duration limit) const;

 private:
  explicit CloudScenario(ScenarioConfig config)
      : config_(std::move(config)) {}

  /// Rebuilds this deployment on `name`'s sheet (native billing
  /// semantics, instance matched by name or compute units) — the shared
  /// core of the provider comparison sweeps. `instance`/`granularity`
  /// report what was rented.
  Result<CloudScenario> ForProvider(const std::string& name,
                                    std::string* instance,
                                    BillingGranularity* granularity) const;

  /// One CompareProviders task: rebuild this deployment on `name`'s
  /// sheet and re-solve into `row`.
  Status CompareOneProvider(const std::string& name,
                            const Workload& workload,
                            const ObjectiveSpec& spec,
                            std::string_view solver,
                            ProviderComparisonRow& row) const;

  // --- Dispatch impl bodies (core/advisor.cc) --------------------------

  /// The request's workload: inline pointer first, then the
  /// WorkloadSpec ("default" -> DefaultWorkload(), "queries" ->
  /// validated verbatim list).
  Result<Workload> ResolveWorkload(const AdvisorRequest& request) const;
  /// The request's timeline: inline pointer first, then generated from
  /// the TimelineSpec over `base`.
  Result<WorkloadTimeline> ResolveTimeline(const AdvisorRequest& request,
                                           const Workload& base) const;
  /// The kSolve body (candidates -> evaluator -> solver), optionally
  /// reusing / repopulating a session warm slot and reporting cache
  /// telemetry into `meta`.
  Result<SolveRun> SolveImpl(const Workload& workload,
                             const ObjectiveSpec& spec,
                             std::string_view solver,
                             const ClusterSpec* cluster_override,
                             AdvisorWarmSlot* warm,
                             ResponseMeta* meta) const;
  /// The kFrontier body: SolveImpl under a multi-objective strategy,
  /// repackaged as frontier + best.
  Result<FrontierRun> FrontierImpl(const Workload& workload,
                                   const ObjectiveSpec& spec,
                                   std::string_view solver,
                                   AdvisorWarmSlot* warm,
                                   ResponseMeta* meta) const;
  /// The kSolveJoint body: SolveImpl under "arch-sweep", repackaged as
  /// the four-axis frontier + winning (architecture, view set) pair.
  Result<JointRun> JointImpl(const Workload& workload,
                             const ObjectiveSpec& spec,
                             std::string_view solver,
                             AdvisorWarmSlot* warm,
                             ResponseMeta* meta) const;

  ScenarioConfig config_;
  // Heap-held so CloudScenario stays movable while internal references
  // (simulator -> lattice, cost model -> pricing) stay stable.
  std::unique_ptr<CubeLattice> lattice_;
  std::unique_ptr<MapReduceSimulator> simulator_;
  std::unique_ptr<PricingModel> pricing_;
  std::unique_ptr<CloudCostModel> cost_model_;
  ClusterSpec cluster_;
};

}  // namespace cloudview

