#include "core/experiments.h"

#include <cmath>

#include "common/logging.h"

namespace cloudview {

ExperimentConfig::ExperimentConfig() {
  // Calibrated to the paper's Section 6 setup: a 10 GB sales subset on
  // five small (1 ECU) instances, where one full-scan aggregation takes
  // ~0.28 h — the paper's per-query scale (its Q1 takes 0.2 h).
  scenario.sales.logical_size = DataSize::FromGB(10);
  scenario.sales.sample_rows = 100'000;
  scenario.mapreduce.job_startup = Duration::FromSeconds(45);
  scenario.mapreduce.map_throughput_per_unit =
      DataSize::FromBytes(2'100 * 1024);  // 2.1 MB/s per compute unit.
  scenario.mapreduce.shuffle_throughput_per_node = DataSize::FromMB(12);
  scenario.mapreduce.write_throughput_per_node = DataSize::FromMB(24);
  scenario.instance_name = "small";
  scenario.nb_instances = 5;
  scenario.prorate_storage = true;
  scenario.maintenance_cycles = 0;
  // A Section 6 run is one rental session (materialize, then query).
  scenario.single_compute_session = true;
  scenario.candidates.max_candidates = 16;
  scenario.candidates.max_size_fraction = 0.5;
  // Stand-in for the paper's external candidate selection [8]: drop
  // near-fact-granularity cuboids (barely aggregating views).
  scenario.candidates.max_rows_fraction = 0.05;
}

double ExperimentRunner::PaperRate(const double (&rates)[3], size_t i) {
  return i < 3 ? rates[i] : std::nan("");
}

Result<ExperimentRunner> ExperimentRunner::Create(ExperimentConfig config) {
  if (config.workload_sizes.empty()) {
    return Status::InvalidArgument("no workload sizes configured");
  }
  if (config.budget_limits.size() != config.workload_sizes.size() ||
      config.time_limits.size() != config.workload_sizes.size()) {
    return Status::InvalidArgument(
        "budgets/time limits must align with workload sizes");
  }
  CV_ASSIGN_OR_RETURN(CloudScenario scenario,
                      CloudScenario::Create(config.scenario));
  auto holder = std::make_unique<CloudScenario>(std::move(scenario));

  // MV2 bills by the started hour (paper Example 2); MV1/MV3 run on the
  // per-second default. Respect the deprecated explicit-model shim.
  // (The override reaches the deprecated explicit-model shim too.)
  ScenarioConfig hourly_config = config.scenario;
  hourly_config.pricing_overrides.compute_granularity =
      BillingGranularity::kHour;
  CV_ASSIGN_OR_RETURN(CloudScenario hourly,
                      CloudScenario::Create(hourly_config));
  auto hourly_holder = std::make_unique<CloudScenario>(std::move(hourly));
  return ExperimentRunner(std::move(config), std::move(holder),
                          std::move(hourly_holder));
}

Result<std::vector<MV1Row>> ExperimentRunner::RunMV1() const {
  CV_ASSIGN_OR_RETURN(Workload full, scenario_->PaperWorkload());
  std::vector<MV1Row> rows;
  for (size_t i = 0; i < config_.workload_sizes.size(); ++i) {
    size_t m = config_.workload_sizes[i];
    if (m > full.size()) {
      return Status::InvalidArgument("workload size exceeds paper workload");
    }
    Workload workload = full.Prefix(m);
    ObjectiveSpec spec;
    spec.scenario = Scenario::kMV1BudgetLimit;
    spec.budget_limit = config_.budget_limits[i];
    CV_ASSIGN_OR_RETURN(ScenarioRun run,
                        scenario_->Run(workload, spec, config_.solver));

    MV1Row row;
    row.num_queries = m;
    row.budget = spec.budget_limit;
    row.time_without = run.baseline.makespan;
    row.time_with = run.selection.time;
    row.views_selected = run.selection.evaluation.selected.size();
    row.cost_without = run.baseline.cost.total();
    row.cost_with = run.selection.evaluation.cost.total();
    row.ip_rate = run.TimeImprovement(spec);
    row.paper_rate = PaperRate(PaperReportedRates::kTable6IP, i);
    row.feasible = run.selection.feasible;
    rows.push_back(row);
  }
  return rows;
}

Result<std::vector<MV2Row>> ExperimentRunner::RunMV2() const {
  // MV2 runs under the paper's started-hour billing; see EXPERIMENTS.md.
  const CloudScenario& scenario = *hourly_scenario_;
  CV_ASSIGN_OR_RETURN(Workload full, scenario.PaperWorkload());
  std::vector<MV2Row> rows;
  for (size_t i = 0; i < config_.workload_sizes.size(); ++i) {
    size_t m = config_.workload_sizes[i];
    if (m > full.size()) {
      return Status::InvalidArgument("workload size exceeds paper workload");
    }
    Workload workload = full.Prefix(m);
    Duration limit = config_.time_limits[i];

    // With-view arm: stay on the base cluster, materialize to meet the
    // deadline at minimal cost. The deadline constrains TprocessingQ
    // (Formula 14 as written): views are built out-of-band but billed.
    ObjectiveSpec spec;
    spec.scenario = Scenario::kMV2TimeLimit;
    spec.time_limit = limit;
    spec.time_includes_materialization = false;
    CV_ASSIGN_OR_RETURN(ScenarioRun run,
                        scenario.Run(workload, spec, config_.solver));

    MV2Row row;
    row.num_queries = m;
    row.time_limit = limit;
    row.cost_with = run.selection.evaluation.cost.total();
    row.time_with = run.selection.time;
    row.views_selected = run.selection.evaluation.selected.size();
    row.feasible = run.selection.feasible;
    row.paper_rate = PaperRate(PaperReportedRates::kTable7IC, i);

    // No-view arm: the raw-scalability alternative — rent the cheapest
    // instance tier that meets the limit without views.
    auto scale_up = scenario.CheapestClusterMeeting(workload, limit);
    if (scale_up.ok()) {
      CV_ASSIGN_OR_RETURN(
          SubsetEvaluation no_views,
          scenario.EvaluateWithoutViews(workload, scale_up.value()));
      row.scale_up_instance = scale_up.value().instance.name;
      row.cost_without = no_views.cost.total();
      row.time_without = no_views.processing_time;
    } else {
      // Not even the largest tier meets the limit; report the base
      // cluster's no-view run and flag it.
      row.scale_up_instance = "(none feasible)";
      row.cost_without = run.baseline.cost.total();
      row.time_without = run.baseline.processing_time;
      row.feasible = false;
    }
    if (!row.cost_without.is_zero()) {
      row.ic_rate =
          1.0 - static_cast<double>(row.cost_with.micros()) /
                    static_cast<double>(row.cost_without.micros());
    }
    rows.push_back(row);
  }
  return rows;
}

Result<std::vector<MV3Row>> ExperimentRunner::RunMV3(double alpha) const {
  CV_ASSIGN_OR_RETURN(Workload full, scenario_->PaperWorkload());
  std::vector<MV3Row> rows;
  for (size_t i = 0; i < config_.workload_sizes.size(); ++i) {
    size_t m = config_.workload_sizes[i];
    if (m > full.size()) {
      return Status::InvalidArgument("workload size exceeds paper workload");
    }
    Workload workload = full.Prefix(m);
    ObjectiveSpec spec;
    spec.scenario = Scenario::kMV3Tradeoff;
    spec.alpha = alpha;

    // Reference deployment: the base cluster without views. All tiers
    // are normalized against it so the blend compares like with like.
    CV_ASSIGN_OR_RETURN(
        SubsetEvaluation reference,
        scenario_->EvaluateWithoutViews(workload, scenario_->cluster()));
    spec.mv3_reference_time = reference.makespan;
    spec.mv3_reference_cost = reference.cost.total();

    // Joint optimization: the paper's "view materialization vs CPU power
    // consumption" tradeoff — MV3 may *give up* compute power (drop to a
    // cheaper tier) and recover time with views. Tiers above the
    // configured one are out of scope (MV1/MV2 fix the cluster; scaling
    // up is MV2's no-view arm).
    MV3Row row;
    row.num_queries = m;
    row.alpha = alpha;
    bool first = true;
    Money base_price = scenario_->cluster().instance.price_per_hour;
    for (const InstanceType& type :
         scenario_->pricing().instances().types()) {
      if (type.price_per_hour > base_price) continue;
      ClusterSpec cluster{type, scenario_->cluster().nodes};
      CV_ASSIGN_OR_RETURN(
          ScenarioRun run,
          scenario_->Run(workload, spec, config_.solver, &cluster));
      double objective = run.selection.objective_value;
      if (first || objective < row.objective_with) {
        row.objective_with = objective;
        row.time_with = run.selection.time;
        row.cost_with = run.selection.evaluation.cost.total();
        row.views_selected = run.selection.evaluation.selected.size();
        row.instance = type.name;
        first = false;
      }
    }
    row.rate = 1.0 - row.objective_with;
    const bool near_03 = std::abs(alpha - 0.3) < 0.025;
    const bool near_07 = std::abs(alpha - 0.7) < 0.075;  // Covers 0.65.
    if (near_03) {
      row.paper_rate = PaperRate(PaperReportedRates::kTable8Alpha03, i);
    } else if (near_07) {
      row.paper_rate = PaperRate(PaperReportedRates::kTable8Alpha07, i);
    } else {
      row.paper_rate = std::nan("");
    }
    rows.push_back(row);
  }
  return rows;
}

}  // namespace cloudview
