#include "common/data_size.h"

#include <cinttypes>
#include <cstdio>

namespace cloudview {

namespace {

// Prints `value` with up to two decimals, trimming trailing zeros.
std::string FormatScaled(double value, const char* unit) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.2f", value);
  std::string s(buf);
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  s += " ";
  s += unit;
  return s;
}

}  // namespace

std::string DataSize::ToString() const {
  int64_t abs_bytes = bytes_ < 0 ? -bytes_ : bytes_;
  std::string body;
  if (abs_bytes >= kBytesPerTB) {
    body = FormatScaled(static_cast<double>(abs_bytes) / kBytesPerTB, "TB");
  } else if (abs_bytes >= kBytesPerGB) {
    body = FormatScaled(static_cast<double>(abs_bytes) / kBytesPerGB, "GB");
  } else if (abs_bytes >= kBytesPerMB) {
    body = FormatScaled(static_cast<double>(abs_bytes) / kBytesPerMB, "MB");
  } else if (abs_bytes >= kBytesPerKB) {
    body = FormatScaled(static_cast<double>(abs_bytes) / kBytesPerKB, "KB");
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64 " B", abs_bytes);
    body = buf;
  }
  return bytes_ < 0 ? "-" + body : body;
}

}  // namespace cloudview
