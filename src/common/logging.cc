#include "common/logging.h"

#include <chrono>
#include <cstdio>

namespace cloudview {
namespace internal {

namespace {

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

LogMessage::LogMessage(const char* file, int line, LogSeverity severity)
    : severity_(severity) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << SeverityTag(severity) << " " << base << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  if (severity_ == LogSeverity::kFatal) {
    std::cerr.flush();
    std::abort();
  }
}

}  // namespace internal
}  // namespace cloudview
