#include "common/logging.h"

#include <cstdio>

#include "common/mutex.h"

namespace cloudview {
namespace internal {

namespace {

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

// Serializes sink writes: pool workers log concurrently (DESIGN.md §9)
// and a fwrite to stderr is not guaranteed atomic across platforms, so
// every complete line goes out under this mutex — no interleaved
// characters. Both are constant-initialized (no static-init-order
// hazard for registrars that CV_CHECK during startup).
Mutex g_sink_mu;
// The redirect target; nullptr means stderr (stderr is not
// constant-initializable on all libcs, so the default is encoded as
// null rather than captured here).
std::FILE* g_sink CLOUDVIEW_GUARDED_BY(g_sink_mu) = nullptr;

}  // namespace

void SetLogSink(std::FILE* sink) {
  MutexLock lock(&g_sink_mu);
  g_sink = sink;
}

LogMessage::LogMessage(const char* file, int line, LogSeverity severity)
    : severity_(severity) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << SeverityTag(severity) << " " << base << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  const std::string line = stream_.str();
  {
    MutexLock lock(&g_sink_mu);
    std::FILE* sink = g_sink != nullptr ? g_sink : stderr;
    std::fwrite(line.data(), 1, line.size(), sink);
    if (severity_ == LogSeverity::kFatal) std::fflush(sink);
  }
  if (severity_ == LogSeverity::kFatal) std::abort();
}

}  // namespace internal
}  // namespace cloudview
