// Result<T>: value-or-Status, the return type of fallible factories.

#pragma once

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace cloudview {

/// \brief Holds either a T or a non-OK Status.
///
/// Construction from a T yields an OK result; construction from a non-OK
/// Status yields an error result. Accessing the value of an error result
/// aborts (programming error), mirroring arrow::Result.
template <typename T>
class Result {
 public:
  /// \brief Implicit construction from a value (OK result).
  // NOLINTNEXTLINE(google-explicit-constructor): implicit value->Result
  // conversion is the API (mirrors arrow::Result; `return value;`).
  Result(T value)
      : value_(std::move(value)) {}

  /// \brief Implicit construction from an error status.
  // NOLINTNEXTLINE(google-explicit-constructor): implicit error->Result
  // conversion is the API (CV_RETURN_IF_ERROR forwards statuses).
  Result(Status status)
      : status_(std::move(status)) {
    CV_CHECK(!status_.ok()) << "Result constructed from OK Status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// \brief Borrows the contained value; requires ok().
  const T& value() const& {
    CV_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    CV_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }

  /// \brief Moves the contained value out; requires ok().
  T MoveValue() {
    CV_CHECK(ok()) << "Result::MoveValue() on error: " << status_.ToString();
    return std::move(*value_);
  }

  /// \brief Returns the value or `fallback` when this is an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

}  // namespace cloudview

/// \brief Evaluates `rexpr` (a Result<T>) and either assigns its value to
/// `lhs` or returns the error status to the caller.
#define CV_ASSIGN_OR_RETURN(lhs, rexpr)                            \
  CV_ASSIGN_OR_RETURN_IMPL_(CV_CONCAT_(_cv_result, __LINE__), lhs, rexpr)

#define CV_CONCAT_INNER_(a, b) a##b
#define CV_CONCAT_(a, b) CV_CONCAT_INNER_(a, b)
#define CV_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = tmp.MoveValue()

