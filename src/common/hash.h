// Hashing utilities for aggregation keys and container mixing.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace cloudview {

/// \brief 64-bit FNV-1a over raw bytes.
inline uint64_t Fnv1a64(const void* data, size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t h = 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

inline uint64_t Fnv1a64(std::string_view s) {
  return Fnv1a64(s.data(), s.size());
}

/// \brief Strong avalanche mix (SplitMix64 finalizer).
inline uint64_t Mix64(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// \brief Boost-style incremental combine.
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (Mix64(value) + 0x9E3779B97F4A7C15ULL + (seed << 6) +
                 (seed >> 2));
}

}  // namespace cloudview

