#include "common/money.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace cloudview {

Money Money::ScaleBy(int64_t num, int64_t den) const {
  CV_CHECK(den != 0) << "Money::ScaleBy with zero denominator";
  __int128 product = static_cast<__int128>(micros_) * num;
  // Round half away from zero.
  __int128 d = den;
  if (d < 0) {
    d = -d;
    product = -product;
  }
  __int128 quotient;
  if (product >= 0) {
    quotient = (product + d / 2) / d;
  } else {
    quotient = (product - d / 2) / d;
  }
  return Money(static_cast<int64_t>(quotient));
}

std::string Money::ToString() const {
  int64_t abs_micros = micros_ < 0 ? -micros_ : micros_;
  int64_t whole = abs_micros / 1'000'000;
  int64_t frac = abs_micros % 1'000'000;
  char buf[48];
  if (frac % 10'000 == 0) {
    // Cents are enough.
    std::snprintf(buf, sizeof(buf), "%s$%" PRId64 ".%02" PRId64,
                  micros_ < 0 ? "-" : "", whole, frac / 10'000);
  } else {
    // Show full micro precision, trimming trailing zeros.
    std::snprintf(buf, sizeof(buf), "%s$%" PRId64 ".%06" PRId64,
                  micros_ < 0 ? "-" : "", whole, frac);
    char* end = buf + std::char_traits<char>::length(buf);
    while (end > buf && end[-1] == '0') --end;
    *end = '\0';
  }
  return buf;
}

}  // namespace cloudview
