// Months: fixed-point storage-billing time (the paper bills storage in
// GB-months over intervals of constant size).
//
// Stored as milli-months (1/1000 month) so that integer-month examples are
// exact and pro-rata billing over hours is well-defined. Conversion from
// wall-clock uses the 730 h/month convention (8760 h / 12).

#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <ostream>
#include <string>

#include "common/duration.h"

namespace cloudview {

/// \brief A span (or point on a billing timeline) measured in months,
/// at milli-month resolution.
class Months {
 public:
  static constexpr int64_t kMilliPerMonth = 1000;
  /// Hours per month used for pro-rata conversion (8760 h / 12).
  static constexpr int64_t kHoursPerMonth = 730;

  constexpr Months() = default;

  static constexpr Months FromMonths(int64_t m) {
    return Months(m * kMilliPerMonth);
  }
  static constexpr Months FromMilli(int64_t milli) { return Months(milli); }

  /// \brief Fractional months, rounded to the nearest milli-month.
  static Months FromMonthsRounded(double m) {
    return Months(static_cast<int64_t>(
        std::llround(m * static_cast<double>(kMilliPerMonth))));
  }

  /// \brief Pro-rata conversion from wall-clock time (730 h = 1 month),
  /// rounded to the nearest milli-month.
  static Months FromDuration(Duration d) {
    double month_ms =
        static_cast<double>(kHoursPerMonth) * Duration::kMillisPerHour;
    return Months(static_cast<int64_t>(std::llround(
        static_cast<double>(d.millis()) / month_ms * kMilliPerMonth)));
  }

  static constexpr Months Zero() { return Months(0); }

  constexpr int64_t milli() const { return milli_; }
  constexpr double count() const {
    return static_cast<double>(milli_) / kMilliPerMonth;
  }

  constexpr bool is_zero() const { return milli_ == 0; }
  constexpr bool is_negative() const { return milli_ < 0; }

  /// \brief Renders e.g. "12 mo", "0.5 mo".
  std::string ToString() const;

  constexpr Months operator+(Months other) const {
    return Months(milli_ + other.milli_);
  }
  constexpr Months operator-(Months other) const {
    return Months(milli_ - other.milli_);
  }
  Months& operator+=(Months other) {
    milli_ += other.milli_;
    return *this;
  }

  constexpr auto operator<=>(const Months&) const = default;

 private:
  constexpr explicit Months(int64_t milli) : milli_(milli) {}

  int64_t milli_ = 0;
};

inline std::ostream& operator<<(std::ostream& os, Months m) {
  return os << m.ToString();
}

}  // namespace cloudview

