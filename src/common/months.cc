#include "common/months.h"

#include <cinttypes>
#include <cstdio>

namespace cloudview {

std::string Months::ToString() const {
  char buf[48];
  if (milli_ % kMilliPerMonth == 0) {
    std::snprintf(buf, sizeof(buf), "%" PRId64 " mo",
                  milli_ / kMilliPerMonth);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f mo", count());
  }
  return buf;
}

}  // namespace cloudview
