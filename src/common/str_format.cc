#include "common/str_format.h"

#include <cctype>
#include <cstdio>

namespace cloudview {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return std::string();
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

std::string PadLeft(std::string_view text, size_t width) {
  if (text.size() >= width) return std::string(text);
  return std::string(width - text.size(), ' ') + std::string(text);
}

std::string PadRight(std::string_view text, size_t width) {
  if (text.size() >= width) return std::string(text);
  return std::string(text) + std::string(width - text.size(), ' ');
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string FormatTrimmed(double value, int max_decimals) {
  std::string s = StrFormat("%.*f", max_decimals, value);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

std::string FormatPercent(double ratio, int decimals) {
  return StrFormat("%.*f%%", decimals, ratio * 100.0);
}

}  // namespace cloudview
