// Small string helpers (GCC 12 lacks std::format; we wrap snprintf).

#pragma once

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace cloudview {

/// \brief printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// \brief Joins `parts` with `sep`: Join({"a","b"}, ", ") == "a, b".
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// \brief Splits on a single character; empty fields are preserved.
std::vector<std::string> Split(std::string_view text, char sep);

/// \brief Strips ASCII whitespace from both ends.
std::string Trim(std::string_view text);

/// \brief Left/right padding to `width` with spaces (no truncation).
std::string PadLeft(std::string_view text, size_t width);
std::string PadRight(std::string_view text, size_t width);

/// \brief True when `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// \brief Formats a double trimmed of trailing zeros: 1.50 -> "1.5".
std::string FormatTrimmed(double value, int max_decimals);

/// \brief Formats a ratio as a percentage, e.g. 0.254 -> "25.4%".
std::string FormatPercent(double ratio, int decimals = 1);

}  // namespace cloudview

