#include "common/random.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace cloudview {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(sm);
}

uint64_t Rng::Next() {
  uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  CV_CHECK(bound > 0) << "Rng::Uniform bound must be positive";
  // Lemire's method with rejection to remove modulo bias.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  CV_CHECK(lo <= hi) << "Rng::UniformInt empty range";
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // Full 64-bit range.
  return lo + static_cast<int64_t>(Uniform(span));
}

double Rng::UniformDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xA02BDBF7BB3C0A7ULL); }

ZipfDistribution::ZipfDistribution(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  CV_CHECK(n > 0) << "ZipfDistribution over empty domain";
  cdf_.resize(n);
  double accum = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    accum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = accum;
  }
  for (auto& v : cdf_) v /= accum;
  cdf_.back() = 1.0;  // Guard against round-off at the top.
}

uint64_t ZipfDistribution::Sample(Rng& rng) const {
  double u = rng.UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace cloudview
