// ConcurrentMemo: a fixed-capacity, insert-once concurrent hash table
// from 64-bit keys to small trivially-copyable values — the shared memo
// the branch-and-bound search workers publish subset bounds into
// (core/optimizer/memo_search.h, DESIGN.md §13).
//
// Design constraints, in order:
//  * Value-determinism: entries must be pure functions of their key.
//    Concurrent publishers of the same key write identical bytes, and a
//    reader either sees a fully-published entry or a miss — so memo
//    contents can only ever change *speed*, never results.
//  * Lock-free reads on the probe hot path: a lookup is a handful of
//    contiguous atomic loads (open addressing, linear probing over a
//    power-of-two slot array), no mutex, no node walk.
//  * Bounded memory: capacity is fixed at construction. When the table
//    passes its load cap the memo stops accepting new keys and counts
//    the drops (full_drops()) instead of silently degrading — the
//    telemetry the EvaluationCache bugfix sweep added everywhere
//    (bench rows surface hit/miss/full counters; DESIGN.md §13.4).
//
// Publication protocol per slot (TSan-clean):
//  * Publish: CAS the key atomic from kEmpty to the key (acq_rel). The
//    winner writes the value bytes, then sets the ready flag (release).
//    Losers on the same key return without writing (first writer wins;
//    any writer would have written the same bytes).
//  * Lookup: load the key (acquire); on a match, load the ready flag
//    (acquire). A set flag happens-after the value write, so the value
//    bytes are safe to read. An unset flag is reported as a miss (the
//    entry is mid-publication; the caller just recomputes).

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>

#include "common/hash.h"
#include "common/logging.h"

namespace cloudview {

/// \brief Insert-once concurrent memo keyed by pre-mixed 64-bit hashes
/// (Zobrist subset hashes index well raw). `Value` must be trivially
/// copyable; entries for one key must always carry identical bytes.
///
/// Thread-safe for concurrent Lookup/Publish from any number of
/// threads; all synchronization is per-slot atomics (no Mutex, so
/// readers never serialize). The counters are relaxed atomics —
/// telemetry, not synchronization.
template <typename Value>
class ConcurrentMemo {
  static_assert(std::is_trivially_copyable_v<Value>,
                "ConcurrentMemo values are published as raw bytes");

 public:
  /// \brief Rounds `min_slots` up to a power of two and allocates the
  /// slot array once; no rehashing ever happens (growth under
  /// concurrent readers would need epochs — bounded-and-counted beats
  /// complex here, exactly like EvaluationCache's eviction design).
  explicit ConcurrentMemo(size_t min_slots) {
    size_t slots = 1;
    while (slots < min_slots) slots <<= 1;
    slots_ = std::make_unique<Slot[]>(slots);
    num_slots_ = slots;
    // Leave headroom so linear probes stay short near the load cap.
    max_entries_ = slots - slots / 4;
  }

  /// \brief Copies the entry for `key` into `*out` and returns true;
  /// false on a miss (absent, mid-publication, or table full when it
  /// was offered).
  bool Lookup(uint64_t key, Value* out) const {
    lookups_.fetch_add(1, std::memory_order_relaxed);
    uint64_t stored = StoredKey(key);
    size_t mask = num_slots_ - 1;
    for (size_t i = stored & mask;; i = (i + 1) & mask) {
      uint64_t slot_key = slots_[i].key.load(std::memory_order_acquire);
      if (slot_key == kEmpty) return false;
      if (slot_key == stored) {
        if (!slots_[i].ready.load(std::memory_order_acquire)) {
          return false;  // Mid-publication; caller recomputes.
        }
        *out = slots_[i].value;
        hits_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
  }

  /// \brief Publishes `value` under `key`. First writer wins; repeat
  /// publications of a present key are no-ops. Past the load cap the
  /// offer is dropped and counted (the memo never evicts: entries are
  /// shared across racing workers, and eviction under readers would
  /// cost a lock on every lookup).
  void Publish(uint64_t key, const Value& value) {
    if (size_.load(std::memory_order_relaxed) >= max_entries_) {
      full_drops_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    uint64_t stored = StoredKey(key);
    size_t mask = num_slots_ - 1;
    for (size_t i = stored & mask;; i = (i + 1) & mask) {
      uint64_t expected = kEmpty;
      if (slots_[i].key.compare_exchange_strong(
              expected, stored, std::memory_order_acq_rel)) {
        slots_[i].value = value;
        slots_[i].ready.store(true, std::memory_order_release);
        size_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      if (expected == stored) return;  // Already (being) published.
    }
  }

  size_t capacity() const { return max_entries_; }
  size_t size() const { return size_.load(std::memory_order_relaxed); }
  uint64_t lookups() const {
    return lookups_.load(std::memory_order_relaxed);
  }
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  /// \brief Publications dropped because the table was at capacity —
  /// nonzero means a bigger memo would have helped (surfaced in the
  /// bench rows; never affects correctness).
  uint64_t full_drops() const {
    return full_drops_.load(std::memory_order_relaxed);
  }

 private:
  /// kEmpty marks unused slots; a real key equal to it (the empty
  /// subset hashes to 0) is remapped through Mix64 so it stays
  /// storable. The remap is injective on the reserved value only — for
  /// every other key the identity is kept, preserving the pre-mixed
  /// distribution.
  static constexpr uint64_t kEmpty = 0;
  static uint64_t StoredKey(uint64_t key) {
    return key == kEmpty ? Mix64(0x426E426F756E6473ULL) : key;
  }

  struct Slot {
    std::atomic<uint64_t> key{kEmpty};
    std::atomic<bool> ready{false};
    Value value{};
  };

  std::unique_ptr<Slot[]> slots_;
  size_t num_slots_ = 0;
  size_t max_entries_ = 0;
  std::atomic<size_t> size_{0};
  // Telemetry only (relaxed): bumped by const Lookup().
  // thread-compat: atomic counters — safe from any thread by
  // construction; relaxed ordering because they gate nothing.
  mutable std::atomic<uint64_t> lookups_{0};
  mutable std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> full_drops_{0};
};

}  // namespace cloudview
