// Minimal logging and invariant-checking macros (glog-flavoured).
//
// CV_CHECK(cond) << "context";   aborts with the streamed message when the
// condition is false. CV_DCHECK does not evaluate its condition in NDEBUG
// builds. CV_LOG_* write a tagged line to stderr.

#pragma once

#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <string>

namespace cloudview {
namespace internal {

enum class LogSeverity { kInfo, kWarning, kError, kFatal };

/// \brief Redirects log output (stderr by default) — a test seam.
/// Pass nullptr to restore stderr. The sink is written under the
/// logging mutex, so it is safe to swap between (not during) parallel
/// regions.
void SetLogSink(std::FILE* sink);

/// \brief Accumulates a log line and emits it (to the sink, stderr by
/// default) on destruction. Lines are written whole under one mutex,
/// so concurrent pool workers never interleave characters. Fatal
/// severity aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(const char* file, int line, LogSeverity severity);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
  LogSeverity severity_;
};

/// \brief Turns a streamed expression into void so it can sit on the
/// false-branch of ?: (the glog "voidify" idiom). operator& binds looser
/// than << and tighter than ?:.
class LogMessageVoidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace cloudview

#define CV_LOG_IMPL_(severity)                                 \
  ::cloudview::internal::LogMessage(                           \
      __FILE__, __LINE__, ::cloudview::internal::LogSeverity::severity) \
      .stream()

#define CV_LOG_INFO CV_LOG_IMPL_(kInfo)
#define CV_LOG_WARNING CV_LOG_IMPL_(kWarning)
#define CV_LOG_ERROR CV_LOG_IMPL_(kError)

/// \brief Aborts with a streamed message when `cond` is false.
/// Usage: CV_CHECK(x > 0) << "x was " << x;
#define CV_CHECK(cond)                               \
  (cond) ? (void)0                                   \
         : ::cloudview::internal::LogMessageVoidify() & \
               CV_LOG_IMPL_(kFatal) << "Check failed: " #cond " "

#ifdef NDEBUG
// The condition is not evaluated (short-circuit), but must still compile.
#define CV_DCHECK(cond) CV_CHECK(true || (cond))
#else
#define CV_DCHECK(cond) CV_CHECK(cond)
#endif
