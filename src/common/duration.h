// Duration: elapsed (or simulated) time with billing helpers.
//
// Stored as signed 64-bit milliseconds. The paper bills compute by the
// *started* hour ("we must use a function to round processing time up"), so
// Duration exposes BillableHours() alongside exact accessors.

#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <ostream>
#include <string>

namespace cloudview {

/// \brief A span of time in milliseconds.
class Duration {
 public:
  static constexpr int64_t kMillisPerSecond = 1000;
  static constexpr int64_t kMillisPerMinute = 60 * kMillisPerSecond;
  static constexpr int64_t kMillisPerHour = 60 * kMillisPerMinute;

  constexpr Duration() = default;

  static constexpr Duration FromMillis(int64_t ms) { return Duration(ms); }
  static constexpr Duration FromSeconds(int64_t s) {
    return Duration(s * kMillisPerSecond);
  }
  static constexpr Duration FromMinutes(int64_t m) {
    return Duration(m * kMillisPerMinute);
  }
  static constexpr Duration FromHours(int64_t h) {
    return Duration(h * kMillisPerHour);
  }

  /// \brief Fractional-hours constructor, rounded to the nearest
  /// millisecond. 0.2 h (the paper's Q1 processing time) is exact.
  static Duration FromHoursRounded(double hours) {
    return Duration(static_cast<int64_t>(
        std::llround(hours * static_cast<double>(kMillisPerHour))));
  }

  static constexpr Duration Zero() { return Duration(0); }

  constexpr int64_t millis() const { return millis_; }
  constexpr double seconds() const {
    return static_cast<double>(millis_) / kMillisPerSecond;
  }
  constexpr double minutes() const {
    return static_cast<double>(millis_) / kMillisPerMinute;
  }
  constexpr double hours() const {
    return static_cast<double>(millis_) / kMillisPerHour;
  }

  constexpr bool is_zero() const { return millis_ == 0; }
  constexpr bool is_negative() const { return millis_ < 0; }

  /// \brief Number of *started* hours, the paper's compute-billing unit.
  /// 50 h -> 50; 50 h + 1 ms -> 51; 0 -> 0. Requires a non-negative span.
  int64_t BillableHours() const;

  /// \brief Renders adaptively: "50 h", "0.2 h", "72 s", "150 ms".
  std::string ToString() const;

  constexpr Duration operator+(Duration other) const {
    return Duration(millis_ + other.millis_);
  }
  constexpr Duration operator-(Duration other) const {
    return Duration(millis_ - other.millis_);
  }
  constexpr Duration operator*(int64_t factor) const {
    return Duration(millis_ * factor);
  }
  Duration& operator+=(Duration other) {
    millis_ += other.millis_;
    return *this;
  }
  Duration& operator-=(Duration other) {
    millis_ -= other.millis_;
    return *this;
  }

  constexpr auto operator<=>(const Duration&) const = default;

 private:
  constexpr explicit Duration(int64_t ms) : millis_(ms) {}

  int64_t millis_ = 0;
};

constexpr Duration operator*(int64_t factor, Duration d) { return d * factor; }

inline std::ostream& operator<<(std::ostream& os, Duration d) {
  return os << d.ToString();
}

}  // namespace cloudview

