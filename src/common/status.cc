#include "common/status.h"

namespace cloudview {

const char* Status::CodeToString(Code code) {
  switch (code) {
    case Code::kOk:
      return "OK";
    case Code::kInvalidArgument:
      return "InvalidArgument";
    case Code::kNotFound:
      return "NotFound";
    case Code::kAlreadyExists:
      return "AlreadyExists";
    case Code::kOutOfRange:
      return "OutOfRange";
    case Code::kFailedPrecondition:
      return "FailedPrecondition";
    case Code::kResourceExhausted:
      return "ResourceExhausted";
    case Code::kUnimplemented:
      return "Unimplemented";
    case Code::kInternal:
      return "Internal";
    case Code::kCancelled:
      return "Cancelled";
    case Code::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace cloudview
