// Money: exact fixed-point currency arithmetic.
//
// Monetary amounts are stored as signed 64-bit *micro-dollars* (1e-6 USD).
// All of the paper's rates ($0.12/h, $0.14/GB-month, ...) are exact in this
// representation, and the cost models never round through floating point:
// rate x quantity products are evaluated in 128-bit intermediate precision.

#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <ostream>
#include <string>

#include "common/logging.h"

namespace cloudview {

/// \brief An exact monetary amount in micro-dollars (1e-6 USD).
///
/// Money supports addition, subtraction, integer scaling, and exact
/// rational scaling (`ScaleBy(num, den)`) for rate computations such as
/// "price per GB-month x bytes x months". Scaling by a double is available
/// for analyst-facing code (`MultipliedBy`) and rounds to nearest micro.
class Money {
 public:
  constexpr Money() = default;

  /// \brief Amount from raw micro-dollars.
  static constexpr Money FromMicros(int64_t micros) { return Money(micros); }

  /// \brief Amount from whole cents (1e-2 USD).
  static constexpr Money FromCents(int64_t cents) {
    return Money(cents * 10'000);
  }

  /// \brief Amount from whole dollars.
  static constexpr Money FromDollars(int64_t dollars) {
    return Money(dollars * 1'000'000);
  }

  /// \brief Amount from a fractional dollar figure, rounded to the nearest
  /// micro-dollar. Only use at API boundaries (parsing, UI); internal code
  /// paths stay integral.
  static Money FromDollarsRounded(double dollars) {
    return Money(static_cast<int64_t>(std::llround(dollars * 1e6)));
  }

  static constexpr Money Zero() { return Money(0); }

  constexpr int64_t micros() const { return micros_; }

  /// \brief Lossy conversion for display and plotting only.
  constexpr double dollars() const {
    return static_cast<double>(micros_) / 1e6;
  }

  constexpr bool is_zero() const { return micros_ == 0; }
  constexpr bool is_negative() const { return micros_ < 0; }

  /// \brief Exact scaling by the rational num/den, with round-half-away
  /// rounding of the final quotient. 128-bit intermediates: no overflow for
  /// any realistic bill (|amount| < $9.2e12 and |num| < 2^63).
  Money ScaleBy(int64_t num, int64_t den) const;

  /// \brief Scaling by a double, rounded to the nearest micro-dollar.
  Money MultipliedBy(double factor) const {
    return Money(static_cast<int64_t>(
        std::llround(static_cast<double>(micros_) * factor)));
  }

  /// \brief Renders e.g. "$1.08", "-$0.0012", "$2,131.76" (no grouping).
  /// Trailing zeros beyond cents are trimmed; at least two decimals shown.
  std::string ToString() const;

  constexpr Money operator+(Money other) const {
    return Money(micros_ + other.micros_);
  }
  constexpr Money operator-(Money other) const {
    return Money(micros_ - other.micros_);
  }
  constexpr Money operator-() const { return Money(-micros_); }
  constexpr Money operator*(int64_t factor) const {
    return Money(micros_ * factor);
  }
  Money& operator+=(Money other) {
    micros_ += other.micros_;
    return *this;
  }
  Money& operator-=(Money other) {
    micros_ -= other.micros_;
    return *this;
  }

  constexpr auto operator<=>(const Money&) const = default;

 private:
  constexpr explicit Money(int64_t micros) : micros_(micros) {}

  int64_t micros_ = 0;
};

constexpr Money operator*(int64_t factor, Money m) { return m * factor; }

inline std::ostream& operator<<(std::ostream& os, Money m) {
  return os << m.ToString();
}

}  // namespace cloudview

