#include "common/thread_pool.h"

#include <chrono>
#include <cstdlib>
#include <exception>
#include <string>
#include <utility>

namespace cloudview {

namespace {

/// Index of the worker running on this thread, or kNotAWorker. Lets
/// Submit keep a worker's follow-up tasks on its own deque and lets
/// TakeTask start stealing from a stable home.
constexpr size_t kNotAWorker = static_cast<size_t>(-1);
thread_local size_t tls_worker_index = kNotAWorker;

std::unique_ptr<ThreadPool>& GlobalSlot() {
  static std::unique_ptr<ThreadPool> pool = std::make_unique<ThreadPool>(
      DefaultConcurrency() > 0 ? DefaultConcurrency() - 1 : 0);
  return pool;
}

}  // namespace

namespace internal {

size_t ParseThreadCount(const char* value, size_t fallback) {
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed <= 0) return fallback;
  return static_cast<size_t>(parsed);
}

}  // namespace internal

size_t DefaultConcurrency() {
  size_t hardware = std::thread::hardware_concurrency();
  if (hardware == 0) hardware = 1;
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only getenv before any
  // pool exists; nothing in-process calls setenv.
  return internal::ParseThreadCount(std::getenv("CLOUDVIEW_THREADS"),
                                    hardware);
}

ThreadPool::ThreadPool(size_t workers) {
  queues_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  threads_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&wake_mu_);
    stopping_ = true;
  }
  wake_.NotifyAll();
  for (std::thread& thread : threads_) thread.join();
  // Drain anything submitted after the workers left (callers that
  // Submit during teardown still get their tasks run, serially).
  while (TryRunOne()) {
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  if (queues_.empty()) {
    // No workers: run inline. Submit still "completes" the task, so
    // zero-worker pools behave like a serial executor.
    task();
    return;
  }
  size_t home = tls_worker_index;
  if (home == kNotAWorker || home >= queues_.size()) {
    home = next_queue_.fetch_add(1, std::memory_order_relaxed) %
           queues_.size();
  }
  // Increment BEFORE enqueuing: a stealer may pop (and fetch_sub) the
  // instant the queue mutex is released, and pending_ must never
  // underflow (idle workers would busy-spin on a SIZE_MAX count). The
  // reverse window — pending_ briefly positive with the task not yet
  // pushed — only costs a worker one empty TakeTask scan.
  pending_.fetch_add(1, std::memory_order_release);
  {
    MutexLock lock(&queues_[home]->mu);
    queues_[home]->tasks.push_back(std::move(task));
  }
  // Notify under wake_mu_: a worker that read pending_ == 0 holds the
  // mutex until it is inside wait(), so taking it here orders this
  // submit after that read — the notify cannot land in the window
  // between a worker's predicate check and its block (lost wakeup).
  {
    MutexLock lock(&wake_mu_);
    wake_.NotifyOne();
  }
}

std::function<void()> ThreadPool::TakeTask(size_t home) {
  size_t n = queues_.size();
  if (n == 0) return nullptr;
  if (home >= n) home = 0;
  // Own deque first, newest-first: the task most likely still warm in
  // this core's cache.
  {
    WorkerQueue& own = *queues_[home];
    MutexLock lock(&own.mu);
    if (!own.tasks.empty()) {
      std::function<void()> task = std::move(own.tasks.back());
      own.tasks.pop_back();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return task;
    }
  }
  // Steal oldest-first from the siblings: the opposite end, so thieves
  // and owners rarely contend on the same task.
  for (size_t step = 1; step < n; ++step) {
    WorkerQueue& victim = *queues_[(home + step) % n];
    MutexLock lock(&victim.mu);
    if (!victim.tasks.empty()) {
      std::function<void()> task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return task;
    }
  }
  return nullptr;
}

bool ThreadPool::TryRunOne() {
  size_t home = tls_worker_index;
  std::function<void()> task =
      TakeTask(home == kNotAWorker ? 0 : home);
  if (!task) return false;
  task();
  return true;
}

void ThreadPool::WorkerLoop(size_t self) {
  tls_worker_index = self;
  for (;;) {
    if (std::function<void()> task = TakeTask(self)) {
      task();
      continue;
    }
    MutexLock lock(&wake_mu_);
    // Explicit predicate loop (not a wait-with-lambda): the analysis
    // checks stopping_'s guard here, where wake_mu_ is visibly held.
    while (!stopping_ &&
           pending_.load(std::memory_order_acquire) == 0) {
      wake_.Wait(wake_mu_);
    }
    if (stopping_) return;
  }
}

ThreadPool& ThreadPool::Global() { return *GlobalSlot(); }

void ThreadPool::SetGlobalConcurrency(size_t concurrency) {
  GlobalSlot() =
      std::make_unique<ThreadPool>(concurrency > 0 ? concurrency - 1 : 0);
}

namespace internal {

void ParallelForImpl(ThreadPool& pool, size_t n,
                     const std::function<void(size_t)>& body) {
  struct Join {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::atomic<bool> failed{false};
    Mutex mu;
    CondVar all_done;
    std::exception_ptr error CLOUDVIEW_GUARDED_BY(mu);
    size_t total = 0;
    const std::function<void(size_t)>* body = nullptr;
  };
  // Shared, so helper tasks that start after the loop already finished
  // (every index claimed) can still touch the join state safely.
  auto join = std::make_shared<Join>();
  join->total = n;
  join->body = &body;

  auto drain = [join] {
    for (;;) {
      size_t i = join->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= join->total) return;
      // After a failure the remaining iterations are skipped but still
      // counted, so the join below terminates promptly.
      if (!join->failed.load(std::memory_order_relaxed)) {
        try {
          (*join->body)(i);
        } catch (...) {
          MutexLock lock(&join->mu);
          if (!join->failed.exchange(true)) {
            join->error = std::current_exception();
          }
        }
      }
      if (join->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          join->total) {
        MutexLock lock(&join->mu);
        join->all_done.NotifyAll();
      }
    }
  };

  // One helper per worker (capped by the iteration count): each is a
  // claim-loop over the same shared index, so helpers that never get
  // scheduled cost nothing and the caller can finish the loop alone.
  size_t helpers = std::min(pool.workers(), n - 1);
  for (size_t h = 0; h < helpers; ++h) pool.Submit(drain);
  drain();  // The caller participates; never parks while work remains.

  while (join->done.load(std::memory_order_acquire) != join->total) {
    // In-flight helpers are running on pool threads; lend a hand with
    // unrelated queued work (e.g. a sibling region's tasks) instead of
    // sleeping the whole wait away. The lock is only held across the
    // short timed waits between help attempts (the predicate reads an
    // atomic, never guarded state).
    if (pool.TryRunOne()) continue;
    MutexLock lock(&join->mu);
    join->all_done.WaitFor(join->mu, std::chrono::milliseconds(1),
                           [&join] {
                             return join->done.load(
                                        std::memory_order_acquire) ==
                                    join->total;
                           });
  }
  if (join->failed.load(std::memory_order_acquire)) {
    std::exception_ptr error;
    {
      MutexLock lock(&join->mu);
      error = join->error;
    }
    std::rethrow_exception(error);
  }
}

}  // namespace internal

}  // namespace cloudview
