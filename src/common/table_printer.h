// TablePrinter: aligned fixed-width console tables for bench harnesses.
//
// The benchmark binaries regenerate the paper's tables; TablePrinter gives
// them a uniform, diff-friendly rendering:
//
//   TablePrinter t({"Number of queries", "Budget limit", "IP Rate"});
//   t.AddRow({"3", "$0.80", "25%"});
//   t.Print(std::cout);

#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace cloudview {

/// \brief Collects rows of strings and prints them column-aligned.
class TablePrinter {
 public:
  /// \brief Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// \brief Optional caption printed above the table.
  void SetTitle(std::string title) { title_ = std::move(title); }

  /// \brief Appends a row; must have exactly one cell per column.
  void AddRow(std::vector<std::string> cells);

  /// \brief Renders the table. Numeric-looking cells are right-aligned.
  void Print(std::ostream& os) const;

  /// \brief Renders as CSV (one line per row, headers first).
  void PrintCsv(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cloudview

