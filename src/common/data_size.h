// DataSize: exact byte counts with the paper's binary GB/TB convention.
//
// The paper treats 0.5 TB as 512 GB and 2 TB as 2048 GB, i.e. binary
// multiples: 1 GB = 2^30 bytes, 1 TB = 1024 GB. DataSize stores bytes in a
// signed 64-bit integer (deltas may be negative during timeline algebra).

#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <ostream>
#include <string>

namespace cloudview {

/// \brief An exact data volume in bytes (binary GB/TB convention).
class DataSize {
 public:
  static constexpr int64_t kBytesPerKB = 1024;
  static constexpr int64_t kBytesPerMB = 1024 * kBytesPerKB;
  static constexpr int64_t kBytesPerGB = 1024 * kBytesPerMB;
  static constexpr int64_t kBytesPerTB = 1024 * kBytesPerGB;

  constexpr DataSize() = default;

  static constexpr DataSize FromBytes(int64_t bytes) {
    return DataSize(bytes);
  }
  static constexpr DataSize FromKB(int64_t kb) {
    return DataSize(kb * kBytesPerKB);
  }
  static constexpr DataSize FromMB(int64_t mb) {
    return DataSize(mb * kBytesPerMB);
  }
  static constexpr DataSize FromGB(int64_t gb) {
    return DataSize(gb * kBytesPerGB);
  }
  static constexpr DataSize FromTB(int64_t tb) {
    return DataSize(tb * kBytesPerTB);
  }

  /// \brief Fractional-GB constructor (rounds to the nearest byte). For
  /// boundaries and tests; internal code prefers the exact factories.
  static DataSize FromGBRounded(double gb) {
    return DataSize(static_cast<int64_t>(
        std::llround(gb * static_cast<double>(kBytesPerGB))));
  }

  static constexpr DataSize Zero() { return DataSize(0); }

  constexpr int64_t bytes() const { return bytes_; }
  constexpr double kilobytes() const {
    return static_cast<double>(bytes_) / kBytesPerKB;
  }
  constexpr double megabytes() const {
    return static_cast<double>(bytes_) / kBytesPerMB;
  }
  constexpr double gigabytes() const {
    return static_cast<double>(bytes_) / kBytesPerGB;
  }
  constexpr double terabytes() const {
    return static_cast<double>(bytes_) / kBytesPerTB;
  }

  constexpr bool is_zero() const { return bytes_ == 0; }
  constexpr bool is_negative() const { return bytes_ < 0; }

  /// \brief Renders with an adaptive unit: "512 GB", "1.5 TB", "64 MB".
  std::string ToString() const;

  constexpr DataSize operator+(DataSize other) const {
    return DataSize(bytes_ + other.bytes_);
  }
  constexpr DataSize operator-(DataSize other) const {
    return DataSize(bytes_ - other.bytes_);
  }
  constexpr DataSize operator*(int64_t factor) const {
    return DataSize(bytes_ * factor);
  }
  DataSize& operator+=(DataSize other) {
    bytes_ += other.bytes_;
    return *this;
  }
  DataSize& operator-=(DataSize other) {
    bytes_ -= other.bytes_;
    return *this;
  }

  constexpr auto operator<=>(const DataSize&) const = default;

 private:
  constexpr explicit DataSize(int64_t bytes) : bytes_(bytes) {}

  int64_t bytes_ = 0;
};

constexpr DataSize operator*(int64_t factor, DataSize s) { return s * factor; }

inline std::ostream& operator<<(std::ostream& os, DataSize s) {
  return os << s.ToString();
}

}  // namespace cloudview

