// Work-stealing thread pool and the ParallelFor/ParallelMap primitives
// every parallel seam in cloudview runs on (DESIGN.md §9).
//
// Tasks are plain std::function thunks on per-worker deques: a worker
// pops its own deque LIFO and steals FIFO from its siblings when empty,
// so related work stays cache-warm and idle threads drain the longest
// queue ends. The pool is a fixed set of std::threads over
// std::mutex/std::condition_variable — no dependencies beyond the
// standard library.
//
// Concurrency convention: a "concurrency of N" means N threads make
// progress on a parallel region — the N-1 pool workers plus the caller,
// which always participates (ParallelFor never parks the calling
// thread while work remains). Concurrency 1 therefore degenerates to a
// plain serial loop with no pool traffic at all, which is what makes
// `CLOUDVIEW_THREADS=1` a bit-exact single-threaded reference run.
//
// Determinism: ParallelFor guarantees every index is executed exactly
// once and the caller observes all writes made by iteration bodies
// (completion is an acquire/release barrier). It does NOT order
// iterations; parallel callers must keep iteration bodies independent
// and reduce by index afterwards (see ParallelMap), never by arrival.
//
// Nesting is safe: a worker that hits a nested ParallelFor claims that
// loop's iterations itself and helps drain them, so inner loops never
// deadlock waiting for the pool, even at concurrency 1.
//
// Exception contract: the first exception thrown by an iteration is
// captured, remaining not-yet-started iterations are skipped, and the
// exception is rethrown on the calling thread once in-flight
// iterations finish.

#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace cloudview {

namespace internal {
/// \brief Parses a CLOUDVIEW_THREADS-style value: a positive integer is
/// taken as-is; null, empty, zero, or garbage yields `fallback`.
size_t ParseThreadCount(const char* value, size_t fallback);
}  // namespace internal

/// \brief The process-wide parallelism the global pool is sized to:
/// CLOUDVIEW_THREADS when set to a positive integer, otherwise
/// std::thread::hardware_concurrency() (at least 1).
size_t DefaultConcurrency();

/// \brief Fixed-size work-stealing pool of worker threads.
///
/// Thread-safe: Submit may be called from any thread, including from
/// inside a running task. Destruction joins the workers after draining
/// already-submitted tasks.
class ThreadPool {
 public:
  /// \brief Spawns `workers` threads. Zero workers is valid: Submit
  /// still queues (tasks run only via TryRunOne or destruction drain),
  /// and ParallelFor degenerates to a serial loop.
  explicit ThreadPool(size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Number of pool worker threads.
  size_t workers() const { return threads_.size(); }
  /// \brief Threads a parallel region can occupy: the workers plus the
  /// calling thread (which always participates).
  size_t concurrency() const { return threads_.size() + 1; }

  /// \brief Enqueues `task`. When called from a pool worker the task
  /// goes on that worker's own deque (LIFO, cache-warm); otherwise
  /// deques are fed round-robin. Excludes wake_mu_: Submit briefly
  /// takes it to publish the wakeup, so callers must not hold it.
  void Submit(std::function<void()> task) CLOUDVIEW_EXCLUDES(wake_mu_);

  /// \brief Runs one queued task on the calling thread if any is
  /// available (own deque first, then stealing). Returns false when
  /// every deque is empty. Lets blocked joiners help drain the pool.
  bool TryRunOne();

  /// \brief The shared process pool, lazily sized to
  /// DefaultConcurrency() - 1 workers (the caller is the extra thread).
  static ThreadPool& Global();

  /// \brief Resizes the global pool to `concurrency` total threads
  /// (n - 1 workers; 0 and 1 both mean no workers). Joins the old
  /// pool's workers first. NOT safe to call concurrently with running
  /// parallel regions — call it from the main thread between regions
  /// (tests and bench sweeps do).
  static void SetGlobalConcurrency(size_t concurrency);

 private:
  struct WorkerQueue {
    Mutex mu;
    std::deque<std::function<void()>> tasks CLOUDVIEW_GUARDED_BY(mu);
  };

  void WorkerLoop(size_t self);
  /// Pops from `home`'s deque back, else steals from the next
  /// non-empty sibling's front. Returns an empty function when all
  /// deques are empty.
  std::function<void()> TakeTask(size_t home);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;
  Mutex wake_mu_;
  CondVar wake_;
  std::atomic<size_t> pending_{0};
  std::atomic<size_t> next_queue_{0};
  bool stopping_ CLOUDVIEW_GUARDED_BY(wake_mu_) = false;
};

namespace internal {
/// Type-erased core of ParallelFor (keeps the template thin).
void ParallelForImpl(ThreadPool& pool, size_t n,
                     const std::function<void(size_t)>& body);
}  // namespace internal

/// \brief Runs body(0) ... body(n-1) on up to pool.concurrency()
/// threads (caller included) and returns when all have finished.
/// Iterations must be independent; see the header comment for the
/// determinism and exception contracts.
template <typename Fn>
void ParallelFor(ThreadPool& pool, size_t n, Fn&& body) {
  if (n == 0) return;
  if (pool.workers() == 0 || n == 1) {
    // Degenerate serially with zero overhead (and zero scheduling
    // nondeterminism) — the CLOUDVIEW_THREADS=1 reference path.
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  const std::function<void(size_t)> erased = std::ref(body);
  internal::ParallelForImpl(pool, n, erased);
}

/// \brief ParallelFor on the global pool.
template <typename Fn>
void ParallelFor(size_t n, Fn&& body) {
  ParallelFor(ThreadPool::Global(), n, std::forward<Fn>(body));
}

/// \brief Maps i -> fn(i) into a vector ordered by index, for
/// infallible bodies. T must be default-constructible and movable.
/// (Fallible fan-outs — the comparison sweeps — use ParallelForStatus
/// and write into index-addressed slots instead.)
template <typename T, typename Fn>
std::vector<T> ParallelMap(ThreadPool& pool, size_t n, Fn&& fn) {
  std::vector<T> out(n);
  ParallelFor(pool, n, [&](size_t i) { out[i] = fn(i); });
  return out;
}

/// \brief ParallelMap on the global pool.
template <typename T, typename Fn>
std::vector<T> ParallelMap(size_t n, Fn&& fn) {
  return ParallelMap<T>(ThreadPool::Global(), n, std::forward<Fn>(fn));
}

/// \brief ParallelFor over Status-returning bodies — the fallible
/// ordered fan-out every comparison sweep uses. Runs body(i) for every
/// index (no early abort: tasks are shared-nothing and cheap relative
/// to scheduling them); returns OK when all succeeded, otherwise the
/// failing status with the SMALLEST index — deterministic, never
/// first-to-fail.
template <typename Fn>
Status ParallelForStatus(ThreadPool& pool, size_t n, Fn&& body) {
  std::vector<Status> statuses(n);
  ParallelFor(pool, n, [&](size_t i) { statuses[i] = body(i); });
  for (Status& status : statuses) {
    if (!status.ok()) return std::move(status);
  }
  return Status::OK();
}

/// \brief ParallelForStatus on the global pool.
template <typename Fn>
Status ParallelForStatus(size_t n, Fn&& body) {
  return ParallelForStatus(ThreadPool::Global(), n,
                           std::forward<Fn>(body));
}

}  // namespace cloudview
