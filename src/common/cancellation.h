// CancelToken: cooperative cancellation and deadlines for long-running
// solves (DESIGN.md §14).
//
// A token is shared between the party that may abort a computation (the
// serving layer's solve queue, a test) and the computation itself
// (SolverContext polls it inside HillClimb, annealing and the
// branch-and-bound node expansion). Cancellation is cooperative and
// lossless: a solver that observes the token truncates its search
// exactly like a node-budget cutoff — it keeps its best incumbent and,
// where it can, a gap certificate — and the caller learns *why* through
// status(): kCancelled for an explicit Cancel(), kDeadlineExceeded for
// an expired deadline.
//
// Thread-safety: Cancel()/cancelled()/status() are safe from any thread
// (one atomic flag plus an immutable-after-arm deadline). Arm the
// deadline before sharing the token; ArmDeadline is not synchronized
// against concurrent readers.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/status.h"

namespace cloudview {

class CancelToken {
 public:
  CancelToken() = default;

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// \brief Requests cancellation. Idempotent; safe from any thread.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// \brief Arms a wall-clock deadline `budget_ms` from now (<= 0 arms
  /// an already-expired deadline). Call before sharing the token.
  void ArmDeadlineAfterMillis(int64_t budget_ms) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(budget_ms);
    has_deadline_ = true;
  }

  bool has_deadline() const { return has_deadline_; }

  /// \brief True once Cancel() was called or the deadline passed. The
  /// clock is only consulted while a deadline is armed, so tokens
  /// without one stay a single relaxed atomic load per poll.
  bool cancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    return deadline_expired();
  }

  /// \brief Why the token fired: OK while live, kDeadlineExceeded when
  /// the deadline passed, kCancelled for an explicit Cancel(). An
  /// expired deadline wins the tie — a queue that cancels requests it
  /// found already past their deadline still reports the deadline.
  Status status() const {
    if (deadline_expired()) {
      return Status::DeadlineExceeded("request deadline exceeded");
    }
    if (cancelled_.load(std::memory_order_relaxed)) {
      return Status::Cancelled("request cancelled");
    }
    return Status::OK();
  }

 private:
  bool deadline_expired() const {
    return has_deadline_ && std::chrono::steady_clock::now() >= deadline_;
  }

  std::atomic<bool> cancelled_{false};
  // Immutable after ArmDeadlineAfterMillis (armed before sharing).
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
};

}  // namespace cloudview
