// AlignedVector: a std::vector whose storage is cache-line aligned.
//
// The evaluator hot path (core/optimizer/eval_kernels.h) streams flat
// int64 arrays — the candidate-major timing matrix, the per-query
// best-time/frequency columns — through vectorized min/accumulate
// sweeps. Aligning those buffers to 64 bytes keeps every vector load
// inside one cache line and lets the whole per-query working set start
// on a line boundary. The allocator is the only custom part; value
// semantics (copy, move, resize) are untouched vector behavior, which
// SubsetState's copyability depends on.

#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace cloudview {

/// \brief Minimal C++17 aligned allocator; equality is stateless.
template <typename T, std::size_t Alignment = 64>
struct AlignedAllocator {
  using value_type = T;
  static_assert(Alignment >= alignof(T),
                "Alignment must not weaken the type's natural alignment");

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

/// \brief A vector with 64-byte-aligned storage (SIMD/cache-line ready).
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace cloudview

