// Annotated mutex primitives: std::mutex/std::condition_variable with
// Clang thread-safety capabilities attached (common/thread_annotations.h,
// DESIGN.md §12).
//
// The analysis cannot see through raw std::mutex (libstdc++ carries no
// capability attributes), so every mutex-protected member in cloudview
// is guarded by a `Mutex` and accessed under a `MutexLock`; the clang
// CI leg then proves, at compile time, that no CLOUDVIEW_GUARDED_BY
// member is touched without its lock. The wrappers are zero-cost:
// every method is an inline forward to the std primitive.
//
// CondVar wraps std::condition_variable_any so waits can release a
// `Mutex` directly (it is BasicLockable via lock()/unlock()). Waits
// keep the REQUIRES contract: the capability is held at entry and at
// return, exactly like std::condition_variable::wait.

#pragma once

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace cloudview {

/// \brief An annotated std::mutex — the capability type every
/// CLOUDVIEW_GUARDED_BY member in the repo is guarded by.
class CLOUDVIEW_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() CLOUDVIEW_ACQUIRE() { mu_.lock(); }
  void Unlock() CLOUDVIEW_RELEASE() { mu_.unlock(); }
  bool TryLock() CLOUDVIEW_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// BasicLockable spellings, so CondVar (condition_variable_any) can
  /// release and reacquire this mutex inside a wait. Prefer
  /// Lock()/Unlock() (or better, MutexLock) everywhere else.
  void lock() CLOUDVIEW_ACQUIRE() { mu_.lock(); }
  void unlock() CLOUDVIEW_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// \brief RAII lock over a Mutex: acquires on construction, releases
/// on destruction. The annotated replacement for std::lock_guard.
class CLOUDVIEW_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) CLOUDVIEW_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~MutexLock() CLOUDVIEW_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// \brief Condition variable over Mutex. All waits require the mutex
/// held at entry (and hold it again at return); the release/reacquire
/// inside the wait is internal to the primitive, as with
/// std::condition_variable.
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// \brief Blocks until notified (spurious wakeups possible; callers
  /// loop on their predicate under the lock).
  void Wait(Mutex& mu) CLOUDVIEW_REQUIRES(mu) { cv_.wait(mu); }

  /// \brief Blocks until `pred()` holds or `timeout` elapses; returns
  /// pred(). The predicate runs with `mu` held.
  template <typename Duration, typename Pred>
  bool WaitFor(Mutex& mu, Duration timeout, Pred pred)
      CLOUDVIEW_REQUIRES(mu) {
    return cv_.wait_for(mu, timeout, pred);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace cloudview
