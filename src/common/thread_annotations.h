// Clang thread-safety annotation macros (DESIGN.md §12).
//
// These wrap Clang's `-Wthread-safety` attributes so shared mutable
// state can declare its locking contract in the type system: a member
// tagged CLOUDVIEW_GUARDED_BY(mu) cannot be touched without holding
// `mu`, a function tagged CLOUDVIEW_REQUIRES(mu) cannot be called
// without it, and the clang CI leg turns violations into hard build
// errors (-Wthread-safety -Werror). On compilers without the
// attributes (gcc, MSVC) every macro expands to nothing, so annotated
// code stays portable.
//
// The annotations attach to capability types: `cloudview::Mutex`
// (common/mutex.h) is the repo's annotated mutex — a raw `std::mutex`
// is invisible to the analysis, so guarded state must be protected by
// a `Mutex`. See DESIGN.md §12 for the macro guide and the
// tests/static/ negative-compile suite for the enforced semantics.

#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define CLOUDVIEW_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define CLOUDVIEW_THREAD_ANNOTATION_(x)  // no-op outside clang
#endif

/// Declares a class to be a capability (e.g. "mutex"). Instances can
/// then appear in the acquire/require/guard annotations below.
#define CLOUDVIEW_CAPABILITY(x) \
  CLOUDVIEW_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII class that acquires a capability in its
/// constructor and releases it in its destructor (MutexLock).
#define CLOUDVIEW_SCOPED_CAPABILITY \
  CLOUDVIEW_THREAD_ANNOTATION_(scoped_lockable)

/// Data member `x` may only be read or written while holding `mu`:
///   std::deque<Task> tasks CLOUDVIEW_GUARDED_BY(mu);
#define CLOUDVIEW_GUARDED_BY(mu) \
  CLOUDVIEW_THREAD_ANNOTATION_(guarded_by(mu))

/// Pointer member `p` may be dereferenced only while holding `mu`
/// (the pointer itself is not guarded).
#define CLOUDVIEW_PT_GUARDED_BY(mu) \
  CLOUDVIEW_THREAD_ANNOTATION_(pt_guarded_by(mu))

/// The function may only be called while holding every listed
/// capability; it neither acquires nor releases them.
#define CLOUDVIEW_REQUIRES(...) \
  CLOUDVIEW_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// The function may only be called while NOT holding the listed
/// capabilities (deadlock guard for functions that acquire them).
#define CLOUDVIEW_EXCLUDES(...) \
  CLOUDVIEW_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// The function acquires the listed capabilities and holds them on
/// return (Mutex::Lock, MutexLock's constructor).
#define CLOUDVIEW_ACQUIRE(...) \
  CLOUDVIEW_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// The function releases the listed capabilities (Mutex::Unlock,
/// MutexLock's destructor).
#define CLOUDVIEW_RELEASE(...) \
  CLOUDVIEW_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `result`
/// (Mutex::TryLock).
#define CLOUDVIEW_TRY_ACQUIRE(result, ...) \
  CLOUDVIEW_THREAD_ANNOTATION_(try_acquire_capability(result, __VA_ARGS__))

/// The function returns a reference to the capability guarding its
/// result (accessor seam for wrapper types).
#define CLOUDVIEW_RETURN_CAPABILITY(x) \
  CLOUDVIEW_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: the function's body is not analyzed. Use only for
/// code the analysis cannot model (init-once seams), with a comment
/// saying why.
#define CLOUDVIEW_NO_THREAD_SAFETY_ANALYSIS \
  CLOUDVIEW_THREAD_ANNOTATION_(no_thread_safety_analysis)
