#include "common/table_printer.h"

#include <algorithm>
#include <cctype>

#include "common/logging.h"
#include "common/str_format.h"

namespace cloudview {

namespace {

bool LooksNumeric(const std::string& cell) {
  if (cell.empty()) return false;
  for (char c : cell) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
        c != '-' && c != '+' && c != '$' && c != '%' && c != ',' &&
        c != 'e' && c != 'E' && c != 'h' && c != ' ') {
      return false;
    }
  }
  return std::any_of(cell.begin(), cell.end(), [](char c) {
    return std::isdigit(static_cast<unsigned char>(c)) != 0;
  });
}

std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  CV_CHECK(!headers_.empty()) << "TablePrinter needs at least one column";
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  CV_CHECK(cells.size() == headers_.size())
      << "row has " << cells.size() << " cells, table has "
      << headers_.size() << " columns";
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  if (!title_.empty()) os << title_ << "\n";

  std::string rule;
  for (size_t c = 0; c < widths.size(); ++c) {
    rule += "+";
    rule += std::string(widths[c] + 2, '-');
  }
  rule += "+";

  os << rule << "\n";
  os << "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << " " << PadRight(headers_[c], widths[c]) << " |";
  }
  os << "\n" << rule << "\n";
  for (const auto& row : rows_) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      const std::string& cell = row[c];
      os << " "
         << (LooksNumeric(cell) ? PadLeft(cell, widths[c])
                                : PadRight(cell, widths[c]))
         << " |";
    }
    os << "\n";
  }
  os << rule << "\n";
}

void TablePrinter::PrintCsv(std::ostream& os) const {
  std::vector<std::string> escaped;
  escaped.reserve(headers_.size());
  for (const auto& h : headers_) escaped.push_back(CsvEscape(h));
  os << Join(escaped, ",") << "\n";
  for (const auto& row : rows_) {
    escaped.clear();
    for (const auto& cell : row) escaped.push_back(CsvEscape(cell));
    os << Join(escaped, ",") << "\n";
  }
}

}  // namespace cloudview
