// Deterministic pseudo-random generation for data synthesis and tests.
//
// All stochastic components of cloudview (dataset generator, workload
// generator, property tests) draw from Rng seeded explicitly, so every
// experiment is bit-reproducible. The core generator is xoshiro256**,
// seeded via SplitMix64 (Blackman & Vigna).

#pragma once

#include <cstdint>
#include <vector>

namespace cloudview {

/// \brief Deterministic 64-bit PRNG (xoshiro256**).
class Rng {
 public:
  /// \brief Seeds the four-word state from a single seed via SplitMix64.
  explicit Rng(uint64_t seed);

  /// \brief Next raw 64-bit value.
  uint64_t Next();

  /// \brief Uniform integer in [0, bound), bound > 0. Uses Lemire's
  /// unbiased multiply-shift rejection method.
  uint64_t Uniform(uint64_t bound);

  /// \brief Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// \brief Uniform double in [0, 1).
  double UniformDouble();

  /// \brief True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// \brief Forks an independent stream (useful for parallel generators).
  Rng Fork();

 private:
  uint64_t state_[4];
};

/// \brief Zipf-distributed sampler over ranks {0, ..., n-1} with exponent
/// `theta` (theta = 0 is uniform; larger is more skewed). Precomputes the
/// CDF once; sampling is O(log n).
class ZipfDistribution {
 public:
  ZipfDistribution(uint64_t n, double theta);

  /// \brief Draws a rank in [0, n).
  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  std::vector<double> cdf_;
};

}  // namespace cloudview

