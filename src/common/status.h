// Status: lightweight error propagation without exceptions.
//
// Fallible functions in cloudview return Status (or Result<T>, see result.h)
// instead of throwing. This follows the RocksDB/Arrow idiom: the caller must
// inspect the returned object, and `CV_RETURN_IF_ERROR` keeps call sites
// terse.

#pragma once

#include <ostream>
#include <string>
#include <utility>

namespace cloudview {

/// \brief Outcome of a fallible operation: an error code plus a message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy (the
/// message is empty in the common OK case).
class Status {
 public:
  /// Error taxonomy, modelled after absl::Status / rocksdb::Status.
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kAlreadyExists,
    kOutOfRange,
    kFailedPrecondition,
    kResourceExhausted,
    kUnimplemented,
    kInternal,
    kCancelled,
    kDeadlineExceeded,
  };

  Status() = default;

  /// \brief Constructs a Status with an explicit code and message.
  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// \brief The success value.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(Code::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(Code::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }

  /// \brief True iff this status represents success.
  bool ok() const { return code_ == Code::kOk; }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == Code::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == Code::kFailedPrecondition;
  }
  bool IsResourceExhausted() const {
    return code_ == Code::kResourceExhausted;
  }
  bool IsUnimplemented() const { return code_ == Code::kUnimplemented; }
  bool IsInternal() const { return code_ == Code::kInternal; }
  bool IsCancelled() const { return code_ == Code::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code_ == Code::kDeadlineExceeded;
  }

  /// \brief Human-readable rendering, e.g. "InvalidArgument: bad tier".
  std::string ToString() const;

  /// \brief Name of a code, e.g. "NotFound".
  static const char* CodeToString(Code code);

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }
  friend bool operator!=(const Status& a, const Status& b) {
    return !(a == b);
  }

 private:
  Code code_ = Code::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace cloudview

/// \brief Propagates a non-OK Status to the caller.
#define CV_RETURN_IF_ERROR(expr)                    \
  do {                                              \
    ::cloudview::Status _cv_status = (expr);        \
    if (!_cv_status.ok()) return _cv_status;        \
  } while (false)

