#include "common/duration.h"

#include <cinttypes>
#include <cstdio>

#include "common/logging.h"

namespace cloudview {

int64_t Duration::BillableHours() const {
  CV_CHECK(millis_ >= 0) << "BillableHours on negative duration";
  return (millis_ + kMillisPerHour - 1) / kMillisPerHour;
}

std::string Duration::ToString() const {
  int64_t abs_ms = millis_ < 0 ? -millis_ : millis_;
  char buf[48];
  if (abs_ms >= kMillisPerHour) {
    double h = static_cast<double>(abs_ms) / kMillisPerHour;
    if (abs_ms % kMillisPerHour == 0) {
      std::snprintf(buf, sizeof(buf), "%" PRId64 " h",
                    abs_ms / kMillisPerHour);
    } else {
      std::snprintf(buf, sizeof(buf), "%.3f h", h);
    }
  } else if (abs_ms >= kMillisPerMinute) {
    std::snprintf(buf, sizeof(buf), "%.1f min",
                  static_cast<double>(abs_ms) / kMillisPerMinute);
  } else if (abs_ms >= kMillisPerSecond) {
    std::snprintf(buf, sizeof(buf), "%.1f s",
                  static_cast<double>(abs_ms) / kMillisPerSecond);
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRId64 " ms", abs_ms);
  }
  std::string body(buf);
  return millis_ < 0 ? "-" + body : body;
}

}  // namespace cloudview
