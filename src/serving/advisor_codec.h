// JSON codec for the advisor request/response pair (DESIGN.md §14).
//
// Wire conventions:
//   - Exact unit types travel as int64 fields with a unit suffix:
//     Money as `*_micros`, Duration as `*_ms`, DataSize as `*_bytes`,
//     Months as `*_milli_months`. Doubles are reserved for genuinely
//     real-valued knobs (alpha, drift rates, gap fractions), so every
//     monetary/temporal quantity round-trips bit-exactly.
//   - Requests are strict: unknown keys, wrong types, and out-of-range
//     values are InvalidArgument naming the offending field and the
//     accepted values — a typo'd knob must not silently fall back to a
//     default.
//   - Responses serialize the payload selected by the response kind
//     plus the shared `meta` block; WriteJson output is deterministic
//     (insertion-ordered members).

#pragma once

#include <string>
#include <string_view>

#include "core/advisor.h"
#include "core/scenario.h"
#include "serving/json.h"

namespace cloudview {

/// \brief Parses a request object (already-parsed JSON). The in-process
/// fast-path fields (inline_workload, cluster_override, objective's
/// cancel token) have no wire form and come back null.
Result<AdvisorRequest> ParseAdvisorRequest(const JsonValue& json);

/// \brief Convenience: ParseJson + ParseAdvisorRequest.
Result<AdvisorRequest> ParseAdvisorRequestText(std::string_view text);

/// \brief Serializes a request (minus the in-process fast-path
/// fields). ParseAdvisorRequest(AdvisorRequestToJson(r)) reproduces
/// `r` field-for-field.
JsonValue AdvisorRequestToJson(const AdvisorRequest& request);

/// \brief Serializes a response: `kind`, `meta`, and the kind's
/// payload member.
JsonValue AdvisorResponseToJson(const AdvisorResponse& response);

/// \brief Parses the subset of ScenarioConfig exposed on the wire (the
/// server's create_session op): schema / provider / instance
/// selection, storage billing, and candidate-generation knobs. Strict
/// like ParseAdvisorRequest; fields absent from the JSON keep the
/// ScenarioConfig defaults.
Result<ScenarioConfig> ParseScenarioConfig(const JsonValue& json);

/// \brief Parses "solve" / "frontier" / "timeline" /
/// "compare-providers" / "compare-policies" / "solve-joint" (the
/// AdvisorRequestKindName strings).
Result<AdvisorRequestKind> ParseAdvisorRequestKind(std::string_view name);

}  // namespace cloudview
