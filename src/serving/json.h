// Minimal JSON document model for the advisor serving layer
// (DESIGN.md §14): a tagged JsonValue tree, a recursive-descent parser
// with line/column errors, and a compact writer.
//
// Deliberately dependency-free — the container bakes no JSON library,
// and the wire format is small enough that hand-rolling beats gating a
// dependency. Design points:
//
//   - Integers and doubles are distinct: the codec round-trips exact
//     unit types (Money micros, Duration millis, DataSize bytes,
//     Months milli-months) as int64 fields, which a doubles-only model
//     would corrupt past 2^53.
//   - Objects are ordered vectors of (key, value), not hash maps:
//     writes are deterministic (D2's reproducibility rule), and the
//     handful of keys per object makes linear Find cheaper than
//     hashing anyway.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace cloudview {

/// \brief One JSON value: null, bool, int64, double, string, array, or
/// object (ordered key/value list).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  JsonValue() = default;

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b) {
    JsonValue v;
    v.type_ = Type::kBool;
    v.bool_ = b;
    return v;
  }
  static JsonValue Int(int64_t i) {
    JsonValue v;
    v.type_ = Type::kInt;
    v.int_ = i;
    return v;
  }
  static JsonValue Double(double d) {
    JsonValue v;
    v.type_ = Type::kDouble;
    v.double_ = d;
    return v;
  }
  static JsonValue Str(std::string s) {
    JsonValue v;
    v.type_ = Type::kString;
    v.string_ = std::move(s);
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_double() const { return type_ == Type::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool bool_value() const { return bool_; }
  int64_t int_value() const { return int_; }
  double double_value() const { return double_; }
  const std::string& string_value() const { return string_; }
  /// \brief Numeric value as a double regardless of int/double tag.
  double AsDouble() const {
    return is_int() ? static_cast<double>(int_) : double_;
  }

  const std::vector<JsonValue>& items() const { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// \brief Appends to an array value.
  void Push(JsonValue v) { items_.push_back(std::move(v)); }
  /// \brief Appends a member to an object value (no dedup; the writer
  /// emits members in insertion order).
  void Set(std::string key, JsonValue v) {
    members_.emplace_back(std::move(key), std::move(v));
  }

  /// \brief First member with `key`, or nullptr. Null on non-objects.
  const JsonValue* Find(std::string_view key) const {
    for (const auto& [k, v] : members_) {
      if (k == key) return &v;
    }
    return nullptr;
  }

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// \brief Parses one JSON document (whole input; trailing non-space is
/// an error). Errors are InvalidArgument with 1-based line:column and
/// what was expected. Nesting beyond 64 levels is rejected.
Result<JsonValue> ParseJson(std::string_view text);

/// \brief Compact single-line serialization (no spaces, members in
/// insertion order). Doubles render round-trippably; non-finite
/// doubles render as null (JSON has no NaN/Inf).
std::string WriteJson(const JsonValue& value);

}  // namespace cloudview
