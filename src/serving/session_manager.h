// Named advisor sessions (DESIGN.md §14): each session owns one
// wired-up CloudScenario plus the warm-start slot Dispatch reuses
// across requests — the prepared SelectionEvaluator and the persistent
// EvaluationCache whose telemetry accumulates session-long.
//
// Lifecycle: sessions are created by name, looked up per request
// (refreshing their TTL), and evicted after `ttl_ms` of idleness or on
// explicit Drop. Handles are shared_ptr so an in-flight solve keeps
// its session alive across a concurrent drop/eviction; the session's
// own mutex serializes solves (the warm slot and the memoizing
// evaluator are single-writer by contract).

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "core/scenario.h"

namespace cloudview {

/// \brief One named scenario with warm-start state and telemetry.
class AdvisorSession {
 public:
  AdvisorSession(std::string name, CloudScenario scenario)
      : name_(std::move(name)), scenario_(std::move(scenario)) {}

  const std::string& name() const { return name_; }
  const CloudScenario& scenario() const { return scenario_; }

  /// \brief Dispatches `request` against this session's scenario under
  /// the session lock, wiring the warm slot through. Requests to one
  /// session serialize; distinct sessions run concurrently.
  Result<AdvisorResponse> Serve(const AdvisorRequest& request)
      CLOUDVIEW_EXCLUDES(mu_);

  /// \brief Requests served so far (all kinds, including failures).
  uint64_t requests_served() const CLOUDVIEW_EXCLUDES(mu_);
  /// \brief Requests served from the warm slot since it was last
  /// (re)built.
  uint64_t warm_hits() const CLOUDVIEW_EXCLUDES(mu_);

 private:
  const std::string name_;
  const CloudScenario scenario_;
  mutable Mutex mu_;
  AdvisorWarmSlot warm_ CLOUDVIEW_GUARDED_BY(mu_);
  uint64_t requests_served_ CLOUDVIEW_GUARDED_BY(mu_) = 0;
};

/// \brief Creates, finds, and expires sessions by name.
class SessionManager {
 public:
  struct Options {
    /// Idle time after which a session is evicted (sweeps run on every
    /// create/find/drop). Zero or negative disables TTL eviction.
    int64_t ttl_ms = 15 * 60 * 1000;
    /// Hard cap on live sessions; Create fails beyond it.
    size_t max_sessions = 64;
    /// Injectable millisecond clock for tests; defaults to
    /// steady_clock. Must be monotone.
    std::function<int64_t()> now_ms;
  };

  SessionManager();  // == SessionManager(Options{}).
  explicit SessionManager(Options options);

  /// \brief Builds a CloudScenario from `config` and registers it
  /// under `name`. AlreadyExists when the name is live;
  /// ResourceExhausted at max_sessions.
  Result<std::shared_ptr<AdvisorSession>> Create(const std::string& name,
                                                 ScenarioConfig config)
      CLOUDVIEW_EXCLUDES(mu_);

  /// \brief Looks a live session up and refreshes its TTL. NotFound
  /// when absent or already expired.
  Result<std::shared_ptr<AdvisorSession>> Find(const std::string& name)
      CLOUDVIEW_EXCLUDES(mu_);

  /// \brief Unregisters `name` (in-flight holders keep their handle).
  Status Drop(const std::string& name) CLOUDVIEW_EXCLUDES(mu_);

  /// \brief Live session names, sorted.
  std::vector<std::string> Names() CLOUDVIEW_EXCLUDES(mu_);

  /// \brief Sweeps expired sessions now; returns how many were
  /// evicted. (Also runs implicitly on create/find/drop.)
  size_t EvictExpired() CLOUDVIEW_EXCLUDES(mu_);

 private:
  struct Entry {
    std::shared_ptr<AdvisorSession> session;
    int64_t last_used_ms = 0;
  };

  size_t EvictExpiredLocked() CLOUDVIEW_REQUIRES(mu_);

  Options options_;
  Mutex mu_;
  // std::map keeps Names() deterministic without a sort-on-read.
  std::map<std::string, Entry> sessions_ CLOUDVIEW_GUARDED_BY(mu_);
};

}  // namespace cloudview
