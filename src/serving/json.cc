#include "serving/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace cloudview {

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    CV_RETURN_IF_ERROR(ParseValue(value, 0));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after the JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    // 1-based line:column of the current position, so a malformed
    // request line points at the offending byte.
    size_t line = 1, col = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    return Status::InvalidArgument("JSON parse error at " +
                                   std::to_string(line) + ":" +
                                   std::to_string(col) + ": " + what);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue& out, int depth) {
    if (depth > kMaxDepth) {
      return Error("nesting deeper than " + std::to_string(kMaxDepth) +
                   " levels");
    }
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        CV_RETURN_IF_ERROR(ParseString(s));
        out = JsonValue::Str(std::move(s));
        return Status::OK();
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          out = JsonValue::Bool(true);
          return Status::OK();
        }
        return Error("expected \"true\"");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          out = JsonValue::Bool(false);
          return Status::OK();
        }
        return Error("expected \"false\"");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          out = JsonValue::Null();
          return Status::OK();
        }
        return Error("expected \"null\"");
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber(out);
        return Error(std::string("unexpected character '") + c + "'");
    }
  }

  Status ParseObject(JsonValue& out, int depth) {
    ++pos_;  // '{'
    out = JsonValue::Object();
    SkipSpace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected a '\"'-quoted object key");
      }
      std::string key;
      CV_RETURN_IF_ERROR(ParseString(key));
      SkipSpace();
      if (!Consume(':')) return Error("expected ':' after object key");
      JsonValue value;
      CV_RETURN_IF_ERROR(ParseValue(value, depth + 1));
      out.Set(std::move(key), std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue& out, int depth) {
    ++pos_;  // '['
    out = JsonValue::Array();
    SkipSpace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      CV_RETURN_IF_ERROR(ParseValue(value, depth + 1));
      out.Push(std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string& out) {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) break;
      char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          uint32_t code = 0;
          CV_RETURN_IF_ERROR(ParseHex4(code));
          // Surrogate pair: a high surrogate must be followed by an
          // escaped low surrogate.
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Error("unpaired UTF-16 high surrogate");
            }
            pos_ += 2;
            uint32_t low = 0;
            CV_RETURN_IF_ERROR(ParseHex4(low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid UTF-16 low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Error("unpaired UTF-16 low surrogate");
          }
          AppendUtf8(out, code);
          break;
        }
        default:
          --pos_;
          return Error(std::string("invalid escape '\\") + e + "'");
      }
    }
    return Error("unterminated string");
  }

  Status ParseHex4(uint32_t& out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        --pos_;
        return Error("invalid hex digit in \\u escape");
      }
    }
    return Status::OK();
  }

  static void AppendUtf8(std::string& out, uint32_t code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Status ParseNumber(JsonValue& out) {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      return Error("expected digits in number");
    }
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      size_t frac_start = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ == frac_start) return Error("expected digits after '.'");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      size_t exp_start = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ == exp_start) return Error("expected digits in exponent");
    }
    std::string token(text_.substr(start, pos_ - start));
    if (integral) {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        out = JsonValue::Int(static_cast<int64_t>(v));
        return Status::OK();
      }
      // Out of int64 range: fall through to double.
    }
    errno = 0;
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Error("malformed number \"" + token + "\"");
    }
    out = JsonValue::Double(d);
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

void WriteString(const std::string& s, std::string& out) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void WriteValue(const JsonValue& value, std::string& out) {
  switch (value.type()) {
    case JsonValue::Type::kNull:
      out += "null";
      break;
    case JsonValue::Type::kBool:
      out += value.bool_value() ? "true" : "false";
      break;
    case JsonValue::Type::kInt:
      out += std::to_string(value.int_value());
      break;
    case JsonValue::Type::kDouble: {
      double d = value.double_value();
      if (!std::isfinite(d)) {
        out += "null";
        break;
      }
      char buf[32];
      // Shortest round-trip: try %.15g first, fall back to %.17g
      // (bitwise check — exactness is the point here).
      std::snprintf(buf, sizeof(buf), "%.15g", d);
      double reparsed = std::strtod(buf, nullptr);
      if (std::memcmp(&reparsed, &d, sizeof(double)) != 0) {
        std::snprintf(buf, sizeof(buf), "%.17g", d);
      }
      out += buf;
      break;
    }
    case JsonValue::Type::kString:
      WriteString(value.string_value(), out);
      break;
    case JsonValue::Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const JsonValue& item : value.items()) {
        if (!first) out.push_back(',');
        first = false;
        WriteValue(item, out);
      }
      out.push_back(']');
      break;
    }
    case JsonValue::Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, member] : value.members()) {
        if (!first) out.push_back(',');
        first = false;
        WriteString(key, out);
        out.push_back(':');
        WriteValue(member, out);
      }
      out.push_back('}');
      break;
    }
  }
}

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

std::string WriteJson(const JsonValue& value) {
  std::string out;
  WriteValue(value, out);
  return out;
}

}  // namespace cloudview
