#include "serving/session_manager.h"

#include <chrono>
#include <utility>

namespace cloudview {

namespace {

int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Result<AdvisorResponse> AdvisorSession::Serve(
    const AdvisorRequest& request) {
  MutexLock lock(&mu_);
  ++requests_served_;
  return scenario_.Dispatch(request, &warm_);
}

uint64_t AdvisorSession::requests_served() const {
  MutexLock lock(&mu_);
  return requests_served_;
}

uint64_t AdvisorSession::warm_hits() const {
  MutexLock lock(&mu_);
  return warm_.warm_hits;
}

SessionManager::SessionManager() : SessionManager(Options()) {}

SessionManager::SessionManager(Options options)
    : options_(std::move(options)) {
  if (!options_.now_ms) options_.now_ms = SteadyNowMs;
}

size_t SessionManager::EvictExpiredLocked() {
  if (options_.ttl_ms <= 0) return 0;
  const int64_t now = options_.now_ms();
  size_t evicted = 0;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (now - it->second.last_used_ms >= options_.ttl_ms) {
      it = sessions_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  return evicted;
}

Result<std::shared_ptr<AdvisorSession>> SessionManager::Create(
    const std::string& name, ScenarioConfig config) {
  if (name.empty()) {
    return Status::InvalidArgument("session name must be non-empty");
  }
  // Build outside the lock: scenario construction generates the
  // lattice and can take a while.
  CV_ASSIGN_OR_RETURN(CloudScenario scenario,
                      CloudScenario::Create(std::move(config)));
  auto session =
      std::make_shared<AdvisorSession>(name, std::move(scenario));
  MutexLock lock(&mu_);
  EvictExpiredLocked();
  if (sessions_.count(name) != 0) {
    return Status::AlreadyExists("session \"" + name +
                                 "\" already exists");
  }
  if (sessions_.size() >= options_.max_sessions) {
    return Status::ResourceExhausted(
        "session limit reached (" + std::to_string(options_.max_sessions) +
        "); drop one first");
  }
  sessions_[name] = Entry{session, options_.now_ms()};
  return session;
}

Result<std::shared_ptr<AdvisorSession>> SessionManager::Find(
    const std::string& name) {
  MutexLock lock(&mu_);
  EvictExpiredLocked();
  auto it = sessions_.find(name);
  if (it == sessions_.end()) {
    return Status::NotFound("no session named \"" + name +
                            "\" (expired or never created)");
  }
  it->second.last_used_ms = options_.now_ms();
  return it->second.session;
}

Status SessionManager::Drop(const std::string& name) {
  MutexLock lock(&mu_);
  EvictExpiredLocked();
  auto it = sessions_.find(name);
  if (it == sessions_.end()) {
    return Status::NotFound("no session named \"" + name + "\"");
  }
  sessions_.erase(it);
  return Status::OK();
}

std::vector<std::string> SessionManager::Names() {
  MutexLock lock(&mu_);
  EvictExpiredLocked();
  std::vector<std::string> names;
  names.reserve(sessions_.size());
  for (const auto& [name, entry] : sessions_) names.push_back(name);
  return names;
}

size_t SessionManager::EvictExpired() {
  MutexLock lock(&mu_);
  return EvictExpiredLocked();
}

}  // namespace cloudview
