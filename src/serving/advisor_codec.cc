#include "serving/advisor_codec.h"

#include <utility>

namespace cloudview {

namespace {

// --- Strict field readers ----------------------------------------------
// Every reader takes the object's wire name for error text; a request
// with a typo'd or mistyped field fails with the exact path and the
// accepted form, never a silent default.

Status CheckKeys(const JsonValue& obj, std::string_view where,
                 std::initializer_list<std::string_view> allowed) {
  for (const auto& [key, value] : obj.members()) {
    bool known = false;
    for (std::string_view a : allowed) {
      if (key == a) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::string accepted;
      for (std::string_view a : allowed) {
        if (!accepted.empty()) accepted += ", ";
        accepted += a;
      }
      return Status::InvalidArgument("unknown field \"" + key + "\" in " +
                                     std::string(where) +
                                     "; accepted fields: " + accepted);
    }
  }
  return Status::OK();
}

Status RequireObject(const JsonValue& v, std::string_view where) {
  if (!v.is_object()) {
    return Status::InvalidArgument(std::string(where) +
                                   " must be a JSON object");
  }
  return Status::OK();
}

Status ReadString(const JsonValue& obj, std::string_view key,
                  std::string_view where, std::string* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return Status::OK();
  if (!v->is_string()) {
    return Status::InvalidArgument(std::string(where) + "." +
                                   std::string(key) + " must be a string");
  }
  *out = v->string_value();
  return Status::OK();
}

Status ReadInt(const JsonValue& obj, std::string_view key,
               std::string_view where, int64_t* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return Status::OK();
  if (!v->is_int()) {
    return Status::InvalidArgument(std::string(where) + "." +
                                   std::string(key) +
                                   " must be an integer");
  }
  *out = v->int_value();
  return Status::OK();
}

Status ReadUint(const JsonValue& obj, std::string_view key,
                std::string_view where, uint64_t* out) {
  int64_t raw = static_cast<int64_t>(*out);
  CV_RETURN_IF_ERROR(ReadInt(obj, key, where, &raw));
  if (raw < 0) {
    return Status::InvalidArgument(std::string(where) + "." +
                                   std::string(key) +
                                   " must be non-negative");
  }
  *out = static_cast<uint64_t>(raw);
  return Status::OK();
}

Status ReadDouble(const JsonValue& obj, std::string_view key,
                  std::string_view where, double* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return Status::OK();
  if (!v->is_number()) {
    return Status::InvalidArgument(std::string(where) + "." +
                                   std::string(key) + " must be a number");
  }
  *out = v->AsDouble();
  return Status::OK();
}

Status ReadBool(const JsonValue& obj, std::string_view key,
                std::string_view where, bool* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return Status::OK();
  if (!v->is_bool()) {
    return Status::InvalidArgument(std::string(where) + "." +
                                   std::string(key) +
                                   " must be true or false");
  }
  *out = v->bool_value();
  return Status::OK();
}

Status ReadMoney(const JsonValue& obj, std::string_view key,
                 std::string_view where, Money* out) {
  int64_t micros = out->micros();
  CV_RETURN_IF_ERROR(ReadInt(obj, key, where, &micros));
  *out = Money::FromMicros(micros);
  return Status::OK();
}

Status ReadDuration(const JsonValue& obj, std::string_view key,
                    std::string_view where, Duration* out) {
  int64_t ms = out->millis();
  CV_RETURN_IF_ERROR(ReadInt(obj, key, where, &ms));
  *out = Duration::FromMillis(ms);
  return Status::OK();
}

Status ReadDataSize(const JsonValue& obj, std::string_view key,
                    std::string_view where, DataSize* out) {
  int64_t bytes = out->bytes();
  CV_RETURN_IF_ERROR(ReadInt(obj, key, where, &bytes));
  *out = DataSize::FromBytes(bytes);
  return Status::OK();
}

Status ReadMonths(const JsonValue& obj, std::string_view key,
                  std::string_view where, Months* out) {
  int64_t milli = out->milli();
  CV_RETURN_IF_ERROR(ReadInt(obj, key, where, &milli));
  *out = Months::FromMilli(milli);
  return Status::OK();
}

// --- Architectures -----------------------------------------------------

Result<ArchitectureSpec> ParseArchitecture(const JsonValue& json) {
  constexpr std::string_view kWhere = "objective.architectures[i]";
  CV_RETURN_IF_ERROR(RequireObject(json, kWhere));
  CV_RETURN_IF_ERROR(
      CheckKeys(json, kWhere, {"name", "durability", "groups"}));
  ArchitectureSpec spec;
  CV_RETURN_IF_ERROR(ReadString(json, "name", kWhere, &spec.name));
  std::string durability = "local";
  CV_RETURN_IF_ERROR(ReadString(json, "durability", kWhere, &durability));
  if (durability == "local") {
    spec.durability = DurabilityTier::kLocal;
  } else if (durability == "zonal") {
    spec.durability = DurabilityTier::kZonal;
  } else if (durability == "regional") {
    spec.durability = DurabilityTier::kRegional;
  } else {
    return Status::InvalidArgument(
        std::string(kWhere) + ".durability \"" + durability +
        "\" is not a durability tier; accepted: local, zonal, regional");
  }
  const JsonValue* groups = json.Find("groups");
  if (groups != nullptr) {
    if (!groups->is_array()) {
      return Status::InvalidArgument(std::string(kWhere) +
                                     ".groups must be an array");
    }
    for (const JsonValue& g : groups->items()) {
      constexpr std::string_view kGroupWhere =
          "objective.architectures[i].groups[j]";
      CV_RETURN_IF_ERROR(RequireObject(g, kGroupWhere));
      CV_RETURN_IF_ERROR(CheckKeys(g, kGroupWhere,
                                   {"name", "replicas", "zones", "plan"}));
      NodeGroupSpec group;
      CV_RETURN_IF_ERROR(ReadString(g, "name", kGroupWhere, &group.name));
      CV_RETURN_IF_ERROR(
          ReadInt(g, "replicas", kGroupWhere, &group.replicas));
      CV_RETURN_IF_ERROR(ReadInt(g, "zones", kGroupWhere, &group.zones));
      std::string plan = "on-demand";
      CV_RETURN_IF_ERROR(ReadString(g, "plan", kGroupWhere, &plan));
      if (plan == "on-demand") {
        group.plan = PurchasePlan::kOnDemand;
      } else if (plan == "reserved") {
        group.plan = PurchasePlan::kReserved;
      } else if (plan == "spot") {
        group.plan = PurchasePlan::kSpot;
      } else {
        return Status::InvalidArgument(
            std::string(kGroupWhere) + ".plan \"" + plan +
            "\" is not a purchase plan; accepted: on-demand, reserved, "
            "spot");
      }
      spec.groups.push_back(std::move(group));
    }
  }
  CV_RETURN_IF_ERROR(spec.Validate());
  return spec;
}

JsonValue ArchitectureToJson(const ArchitectureSpec& spec) {
  JsonValue json = JsonValue::Object();
  json.Set("name", JsonValue::Str(spec.name));
  json.Set("durability", JsonValue::Str(ToString(spec.durability)));
  if (!spec.groups.empty()) {
    JsonValue groups = JsonValue::Array();
    for (const NodeGroupSpec& g : spec.groups) {
      JsonValue group = JsonValue::Object();
      group.Set("name", JsonValue::Str(g.name));
      group.Set("replicas", JsonValue::Int(g.replicas));
      group.Set("zones", JsonValue::Int(g.zones));
      group.Set("plan", JsonValue::Str(ToString(g.plan)));
      groups.Push(std::move(group));
    }
    json.Set("groups", std::move(groups));
  }
  return json;
}

// --- Objective ---------------------------------------------------------

Result<ObjectiveSpec> ParseObjective(const JsonValue& json) {
  CV_RETURN_IF_ERROR(RequireObject(json, "objective"));
  CV_RETURN_IF_ERROR(CheckKeys(
      json, "objective",
      {"scenario", "budget_limit_micros", "time_limit_ms", "alpha",
       "time_includes_materialization", "mv3_reference_time_ms",
       "mv3_reference_cost_micros", "max_monthly_cost_micros",
       "max_storage_bytes", "max_makespan_ms", "frontier_epsilon",
       "architectures", "architecture_inner_solver"}));
  ObjectiveSpec spec;
  std::string scenario = "mv3";
  CV_RETURN_IF_ERROR(ReadString(json, "scenario", "objective", &scenario));
  if (scenario == "mv1") {
    spec.scenario = Scenario::kMV1BudgetLimit;
  } else if (scenario == "mv2") {
    spec.scenario = Scenario::kMV2TimeLimit;
  } else if (scenario == "mv3") {
    spec.scenario = Scenario::kMV3Tradeoff;
  } else {
    return Status::InvalidArgument(
        "objective.scenario \"" + scenario +
        "\" is not a scenario; accepted: mv1, mv2, mv3");
  }
  CV_RETURN_IF_ERROR(ReadMoney(json, "budget_limit_micros", "objective",
                               &spec.budget_limit));
  CV_RETURN_IF_ERROR(
      ReadDuration(json, "time_limit_ms", "objective", &spec.time_limit));
  CV_RETURN_IF_ERROR(ReadDouble(json, "alpha", "objective", &spec.alpha));
  if (spec.alpha < 0.0 || spec.alpha > 1.0) {
    return Status::InvalidArgument("objective.alpha must be in [0, 1]");
  }
  CV_RETURN_IF_ERROR(ReadBool(json, "time_includes_materialization",
                              "objective",
                              &spec.time_includes_materialization));
  CV_RETURN_IF_ERROR(ReadDuration(json, "mv3_reference_time_ms",
                                  "objective", &spec.mv3_reference_time));
  CV_RETURN_IF_ERROR(ReadMoney(json, "mv3_reference_cost_micros",
                               "objective", &spec.mv3_reference_cost));
  CV_RETURN_IF_ERROR(ReadMoney(json, "max_monthly_cost_micros",
                               "objective", &spec.max_monthly_cost));
  CV_RETURN_IF_ERROR(ReadDataSize(json, "max_storage_bytes", "objective",
                                  &spec.max_storage));
  CV_RETURN_IF_ERROR(ReadDuration(json, "max_makespan_ms", "objective",
                                  &spec.max_makespan));
  CV_RETURN_IF_ERROR(ReadDouble(json, "frontier_epsilon", "objective",
                                &spec.frontier_epsilon));
  if (const JsonValue* architectures = json.Find("architectures")) {
    if (!architectures->is_array()) {
      return Status::InvalidArgument(
          "objective.architectures must be an array");
    }
    for (const JsonValue& a : architectures->items()) {
      CV_ASSIGN_OR_RETURN(ArchitectureSpec arch, ParseArchitecture(a));
      spec.architectures.push_back(std::move(arch));
    }
  }
  CV_RETURN_IF_ERROR(ReadString(json, "architecture_inner_solver",
                                "objective",
                                &spec.architecture_inner_solver));
  return spec;
}

JsonValue ObjectiveToJson(const ObjectiveSpec& spec) {
  JsonValue json = JsonValue::Object();
  const char* scenario = spec.scenario == Scenario::kMV1BudgetLimit ? "mv1"
                         : spec.scenario == Scenario::kMV2TimeLimit
                             ? "mv2"
                             : "mv3";
  json.Set("scenario", JsonValue::Str(scenario));
  json.Set("budget_limit_micros",
           JsonValue::Int(spec.budget_limit.micros()));
  json.Set("time_limit_ms", JsonValue::Int(spec.time_limit.millis()));
  json.Set("alpha", JsonValue::Double(spec.alpha));
  json.Set("time_includes_materialization",
           JsonValue::Bool(spec.time_includes_materialization));
  json.Set("mv3_reference_time_ms",
           JsonValue::Int(spec.mv3_reference_time.millis()));
  json.Set("mv3_reference_cost_micros",
           JsonValue::Int(spec.mv3_reference_cost.micros()));
  json.Set("max_monthly_cost_micros",
           JsonValue::Int(spec.max_monthly_cost.micros()));
  json.Set("max_storage_bytes", JsonValue::Int(spec.max_storage.bytes()));
  json.Set("max_makespan_ms", JsonValue::Int(spec.max_makespan.millis()));
  json.Set("frontier_epsilon", JsonValue::Double(spec.frontier_epsilon));
  if (!spec.architectures.empty()) {
    JsonValue architectures = JsonValue::Array();
    for (const ArchitectureSpec& a : spec.architectures) {
      architectures.Push(ArchitectureToJson(a));
    }
    json.Set("architectures", std::move(architectures));
  }
  if (!spec.architecture_inner_solver.empty()) {
    json.Set("architecture_inner_solver",
             JsonValue::Str(spec.architecture_inner_solver));
  }
  return json;
}

// --- Workload / timeline / policy --------------------------------------

Result<WorkloadSpec> ParseWorkloadSpec(const JsonValue& json) {
  CV_RETURN_IF_ERROR(RequireObject(json, "workload"));
  CV_RETURN_IF_ERROR(CheckKeys(json, "workload", {"kind", "queries"}));
  WorkloadSpec spec;
  CV_RETURN_IF_ERROR(ReadString(json, "kind", "workload", &spec.kind));
  if (spec.kind != "default" && spec.kind != "queries") {
    return Status::InvalidArgument("workload.kind \"" + spec.kind +
                                   "\" is not a workload kind; accepted: "
                                   "default, queries");
  }
  const JsonValue* queries = json.Find("queries");
  if (queries != nullptr) {
    if (!queries->is_array()) {
      return Status::InvalidArgument("workload.queries must be an array");
    }
    for (const JsonValue& q : queries->items()) {
      CV_RETURN_IF_ERROR(RequireObject(q, "workload.queries[i]"));
      CV_RETURN_IF_ERROR(CheckKeys(q, "workload.queries[i]",
                                   {"name", "target", "frequency"}));
      QuerySpec query;
      CV_RETURN_IF_ERROR(
          ReadString(q, "name", "workload.queries[i]", &query.name));
      int64_t target = 0;
      CV_RETURN_IF_ERROR(
          ReadInt(q, "target", "workload.queries[i]", &target));
      if (target < 0) {
        return Status::InvalidArgument(
            "workload.queries[i].target must be non-negative");
      }
      query.target = static_cast<CuboidId>(target);
      CV_RETURN_IF_ERROR(ReadUint(q, "frequency", "workload.queries[i]",
                                  &query.frequency));
      spec.queries.push_back(std::move(query));
    }
  }
  return spec;
}

JsonValue WorkloadSpecToJson(const WorkloadSpec& spec) {
  JsonValue json = JsonValue::Object();
  json.Set("kind", JsonValue::Str(spec.kind));
  if (!spec.queries.empty()) {
    JsonValue queries = JsonValue::Array();
    for (const QuerySpec& q : spec.queries) {
      JsonValue query = JsonValue::Object();
      query.Set("name", JsonValue::Str(q.name));
      query.Set("target", JsonValue::Int(static_cast<int64_t>(q.target)));
      query.Set("frequency",
                JsonValue::Int(static_cast<int64_t>(q.frequency)));
      queries.Push(std::move(query));
    }
    json.Set("queries", std::move(queries));
  }
  return json;
}

Result<DriftSpec> ParseDriftSpec(const JsonValue& json) {
  CV_RETURN_IF_ERROR(RequireObject(json, "timeline.drifts[i]"));
  CV_RETURN_IF_ERROR(CheckKeys(
      json, "timeline.drifts[i]",
      {"kind", "factor", "floor", "season_length", "phase", "amplitude",
       "rate", "cuboid_skew", "growth_per_period"}));
  DriftSpec spec;
  CV_RETURN_IF_ERROR(
      ReadString(json, "kind", "timeline.drifts[i]", &spec.kind));
  if (spec.kind.empty()) {
    return Status::InvalidArgument(
        "timeline.drifts[i].kind is required; accepted: frequency-decay, "
        "seasonal-spike, query-churn, dataset-growth");
  }
  CV_RETURN_IF_ERROR(
      ReadDouble(json, "factor", "timeline.drifts[i]", &spec.factor));
  CV_RETURN_IF_ERROR(
      ReadInt(json, "floor", "timeline.drifts[i]", &spec.floor));
  CV_RETURN_IF_ERROR(ReadInt(json, "season_length", "timeline.drifts[i]",
                             &spec.season_length));
  CV_RETURN_IF_ERROR(
      ReadInt(json, "phase", "timeline.drifts[i]", &spec.phase));
  CV_RETURN_IF_ERROR(ReadDouble(json, "amplitude", "timeline.drifts[i]",
                                &spec.amplitude));
  CV_RETURN_IF_ERROR(
      ReadDouble(json, "rate", "timeline.drifts[i]", &spec.rate));
  CV_RETURN_IF_ERROR(ReadDouble(json, "cuboid_skew", "timeline.drifts[i]",
                                &spec.cuboid_skew));
  CV_RETURN_IF_ERROR(ReadDouble(json, "growth_per_period",
                                "timeline.drifts[i]",
                                &spec.growth_per_period));
  return spec;
}

JsonValue DriftSpecToJson(const DriftSpec& spec) {
  JsonValue json = JsonValue::Object();
  json.Set("kind", JsonValue::Str(spec.kind));
  json.Set("factor", JsonValue::Double(spec.factor));
  json.Set("floor", JsonValue::Int(spec.floor));
  json.Set("season_length", JsonValue::Int(spec.season_length));
  json.Set("phase", JsonValue::Int(spec.phase));
  json.Set("amplitude", JsonValue::Double(spec.amplitude));
  json.Set("rate", JsonValue::Double(spec.rate));
  json.Set("cuboid_skew", JsonValue::Double(spec.cuboid_skew));
  json.Set("growth_per_period", JsonValue::Double(spec.growth_per_period));
  return json;
}

Result<TimelineSpec> ParseTimelineSpec(const JsonValue& json) {
  CV_RETURN_IF_ERROR(RequireObject(json, "timeline"));
  CV_RETURN_IF_ERROR(CheckKeys(json, "timeline",
                               {"num_periods", "period_length_milli_months",
                                "seed", "drifts"}));
  TimelineSpec spec;
  CV_RETURN_IF_ERROR(
      ReadInt(json, "num_periods", "timeline", &spec.num_periods));
  CV_RETURN_IF_ERROR(ReadMonths(json, "period_length_milli_months",
                                "timeline", &spec.period_length));
  CV_RETURN_IF_ERROR(ReadUint(json, "seed", "timeline", &spec.seed));
  const JsonValue* drifts = json.Find("drifts");
  if (drifts != nullptr) {
    if (!drifts->is_array()) {
      return Status::InvalidArgument("timeline.drifts must be an array");
    }
    for (const JsonValue& d : drifts->items()) {
      CV_ASSIGN_OR_RETURN(DriftSpec drift, ParseDriftSpec(d));
      spec.drifts.push_back(std::move(drift));
    }
  }
  return spec;
}

JsonValue TimelineSpecToJson(const TimelineSpec& spec) {
  JsonValue json = JsonValue::Object();
  json.Set("num_periods", JsonValue::Int(spec.num_periods));
  json.Set("period_length_milli_months",
           JsonValue::Int(spec.period_length.milli()));
  json.Set("seed", JsonValue::Int(static_cast<int64_t>(spec.seed)));
  if (!spec.drifts.empty()) {
    JsonValue drifts = JsonValue::Array();
    for (const DriftSpec& d : spec.drifts) drifts.Push(DriftSpecToJson(d));
    json.Set("drifts", std::move(drifts));
  }
  return json;
}

Result<ReselectPolicy> ParsePolicy(const JsonValue& json,
                                   std::string_view where) {
  CV_RETURN_IF_ERROR(RequireObject(json, where));
  CV_RETURN_IF_ERROR(CheckKeys(json, where, {"kind", "k", "threshold"}));
  std::string kind = "static";
  CV_RETURN_IF_ERROR(ReadString(json, "kind", where, &kind));
  if (kind == "static") return ReselectPolicy::Static();
  if (kind == "every-k") {
    int64_t k = 1;
    CV_RETURN_IF_ERROR(ReadInt(json, "k", where, &k));
    if (k <= 0) {
      return Status::InvalidArgument(std::string(where) +
                                     ".k must be positive");
    }
    return ReselectPolicy::EveryK(k);
  }
  if (kind == "on-drift") {
    double threshold = 0.2;
    CV_RETURN_IF_ERROR(ReadDouble(json, "threshold", where, &threshold));
    if (threshold < 0.0 || threshold > 1.0) {
      return Status::InvalidArgument(std::string(where) +
                                     ".threshold must be in [0, 1]");
    }
    return ReselectPolicy::OnDrift(threshold);
  }
  return Status::InvalidArgument(
      std::string(where) + ".kind \"" + kind +
      "\" is not a policy; accepted: static, every-k, on-drift");
}

JsonValue PolicyToJson(const ReselectPolicy& policy) {
  JsonValue json = JsonValue::Object();
  switch (policy.kind) {
    case ReselectPolicy::Kind::kStatic:
      json.Set("kind", JsonValue::Str("static"));
      break;
    case ReselectPolicy::Kind::kEveryK:
      json.Set("kind", JsonValue::Str("every-k"));
      json.Set("k", JsonValue::Int(policy.every_k));
      break;
    case ReselectPolicy::Kind::kOnDrift:
      json.Set("kind", JsonValue::Str("on-drift"));
      json.Set("threshold", JsonValue::Double(policy.drift_threshold));
      break;
  }
  return json;
}

// --- Response payloads -------------------------------------------------

JsonValue CostToJson(const CostBreakdown& cost) {
  JsonValue json = JsonValue::Object();
  json.Set("processing_micros", JsonValue::Int(cost.processing.micros()));
  json.Set("materialization_micros",
           JsonValue::Int(cost.materialization.micros()));
  json.Set("maintenance_micros",
           JsonValue::Int(cost.maintenance.micros()));
  json.Set("storage_micros", JsonValue::Int(cost.storage.micros()));
  json.Set("transfer_micros", JsonValue::Int(cost.transfer.micros()));
  json.Set("requests_micros", JsonValue::Int(cost.requests.micros()));
  json.Set("session_rounding_micros",
           JsonValue::Int(cost.session_rounding.micros()));
  json.Set("interruption_micros",
           JsonValue::Int(cost.interruption.micros()));
  json.Set("inter_az_micros", JsonValue::Int(cost.inter_az.micros()));
  json.Set("total_micros", JsonValue::Int(cost.total().micros()));
  return json;
}

JsonValue SelectedToJson(const std::vector<size_t>& selected) {
  JsonValue json = JsonValue::Array();
  for (size_t c : selected) {
    json.Push(JsonValue::Int(static_cast<int64_t>(c)));
  }
  return json;
}

JsonValue EvaluationToJson(const SubsetEvaluation& evaluation) {
  JsonValue json = JsonValue::Object();
  json.Set("selected", SelectedToJson(evaluation.selected));
  json.Set("cost", CostToJson(evaluation.cost));
  json.Set("processing_time_ms",
           JsonValue::Int(evaluation.processing_time.millis()));
  json.Set("makespan_ms", JsonValue::Int(evaluation.makespan.millis()));
  return json;
}

JsonValue MultiToJson(const MultiScore& multi) {
  JsonValue json = JsonValue::Object();
  json.Set("monthly_cost_micros",
           JsonValue::Int(multi.monthly_cost.micros()));
  json.Set("time_ms", JsonValue::Int(multi.time.millis()));
  json.Set("storage_bytes", JsonValue::Int(multi.storage.bytes()));
  json.Set("unavailability_ppm", JsonValue::Int(multi.unavailability_ppm));
  return json;
}

JsonValue ParetoPointToJson(const ParetoPoint& point) {
  JsonValue json = JsonValue::Object();
  json.Set("score", MultiToJson(point.score));
  json.Set("selected", SelectedToJson(point.selected));
  json.Set("origin", JsonValue::Str(point.origin));
  if (!point.architecture.empty()) {
    json.Set("architecture", JsonValue::Str(point.architecture));
  }
  return json;
}

JsonValue SelectionToJson(const SelectionResult& selection) {
  JsonValue json = JsonValue::Object();
  json.Set("evaluation", EvaluationToJson(selection.evaluation));
  json.Set("feasible", JsonValue::Bool(selection.feasible));
  json.Set("objective_value", JsonValue::Double(selection.objective_value));
  json.Set("solver", JsonValue::Str(selection.solver));
  json.Set("time_ms", JsonValue::Int(selection.time.millis()));
  json.Set("multi", MultiToJson(selection.multi));
  if (!selection.architecture.empty()) {
    json.Set("architecture", JsonValue::Str(selection.architecture));
  }
  if (!selection.frontier.empty()) {
    JsonValue frontier = JsonValue::Array();
    for (const ParetoPoint& p : selection.frontier) {
      frontier.Push(ParetoPointToJson(p));
    }
    json.Set("frontier", std::move(frontier));
  }
  json.Set("cancelled", JsonValue::Bool(selection.cancelled));
  json.Set("gap_fraction", JsonValue::Double(selection.gap_fraction));
  return json;
}

JsonValue SolveRunToJson(const SolveRun& run) {
  JsonValue json = JsonValue::Object();
  json.Set("selection", SelectionToJson(run.selection));
  json.Set("baseline", EvaluationToJson(run.baseline));
  return json;
}

JsonValue FrontierRunToJson(const FrontierRun& run) {
  JsonValue json = JsonValue::Object();
  JsonValue frontier = JsonValue::Array();
  for (const ParetoPoint& p : run.frontier) {
    frontier.Push(ParetoPointToJson(p));
  }
  json.Set("frontier", std::move(frontier));
  json.Set("best", SelectionToJson(run.best));
  json.Set("baseline", EvaluationToJson(run.baseline));
  return json;
}

JsonValue JointRunToJson(const JointRun& run) {
  JsonValue json = JsonValue::Object();
  JsonValue frontier = JsonValue::Array();
  for (const ParetoPoint& p : run.frontier) {
    frontier.Push(ParetoPointToJson(p));
  }
  json.Set("frontier", std::move(frontier));
  json.Set("best", SelectionToJson(run.best));
  json.Set("best_architecture", JsonValue::Str(run.best_architecture));
  json.Set("baseline", EvaluationToJson(run.baseline));
  return json;
}

JsonValue TimelineRunToJson(const TimelineRun& run) {
  JsonValue json = JsonValue::Object();
  json.Set("policy", PolicyToJson(run.policy));
  json.Set("policy_name", JsonValue::Str(run.policy.Name()));
  json.Set("solver", JsonValue::Str(run.solver));
  JsonValue ledger = JsonValue::Array();
  for (const TemporalPeriodRow& row : run.ledger) {
    JsonValue r = JsonValue::Object();
    r.Set("period", JsonValue::Int(static_cast<int64_t>(row.period)));
    r.Set("selected", SelectedToJson(row.selected));
    r.Set("reselected", JsonValue::Bool(row.reselected));
    r.Set("drift", JsonValue::Double(row.drift));
    r.Set("views_added",
          JsonValue::Int(static_cast<int64_t>(row.views_added)));
    r.Set("views_dropped",
          JsonValue::Int(static_cast<int64_t>(row.views_dropped)));
    r.Set("cost", CostToJson(row.cost));
    r.Set("processing_time_ms",
          JsonValue::Int(row.processing_time.millis()));
    ledger.Push(std::move(r));
  }
  json.Set("ledger", std::move(ledger));
  json.Set("total", CostToJson(run.total));
  json.Set("solver_runs",
           JsonValue::Int(static_cast<int64_t>(run.solver_runs)));
  json.Set("warm_periods",
           JsonValue::Int(static_cast<int64_t>(run.warm_periods)));
  return json;
}

const char* GranularityName(BillingGranularity granularity) {
  switch (granularity) {
    case BillingGranularity::kHour:
      return "hour";
    case BillingGranularity::kMinute:
      return "minute";
    case BillingGranularity::kSecond:
      return "second";
  }
  return "unknown";
}

JsonValue ProviderRowToJson(const ProviderComparisonRow& row) {
  JsonValue json = JsonValue::Object();
  json.Set("provider", JsonValue::Str(row.provider));
  json.Set("instance", JsonValue::Str(row.instance));
  json.Set("granularity", JsonValue::Str(GranularityName(row.granularity)));
  json.Set("run", SolveRunToJson(row.run));
  return json;
}

JsonValue MetaToJson(const ResponseMeta& meta) {
  JsonValue json = JsonValue::Object();
  json.Set("solver", JsonValue::Str(meta.solver));
  json.Set("wall_ms", JsonValue::Int(meta.wall_ms));
  json.Set("cache_lookups",
           JsonValue::Int(static_cast<int64_t>(meta.cache_lookups)));
  json.Set("cache_hits",
           JsonValue::Int(static_cast<int64_t>(meta.cache_hits)));
  json.Set("cache_evictions",
           JsonValue::Int(static_cast<int64_t>(meta.cache_evictions)));
  json.Set("gap_fraction", JsonValue::Double(meta.gap_fraction));
  json.Set("cancelled", JsonValue::Bool(meta.cancelled));
  json.Set("warm", JsonValue::Bool(meta.warm));
  return json;
}

}  // namespace

Result<ScenarioConfig> ParseScenarioConfig(const JsonValue& json) {
  CV_RETURN_IF_ERROR(RequireObject(json, "config"));
  CV_RETURN_IF_ERROR(CheckKeys(
      json, "config",
      {"schema", "provider", "instance_name", "nb_instances",
       "maintenance_cycles", "prorate_storage",
       "storage_period_milli_months", "single_compute_session",
       "frontier_solver", "candidates"}));
  ScenarioConfig config;
  CV_RETURN_IF_ERROR(ReadString(json, "schema", "config", &config.schema));
  if (config.schema != "sales" && config.schema != "ssb") {
    return Status::InvalidArgument(
        "config.schema must be \"sales\" or \"ssb\", got \"" +
        config.schema + "\"");
  }
  CV_RETURN_IF_ERROR(
      ReadString(json, "provider", "config", &config.provider));
  CV_RETURN_IF_ERROR(
      ReadString(json, "instance_name", "config", &config.instance_name));
  CV_RETURN_IF_ERROR(
      ReadInt(json, "nb_instances", "config", &config.nb_instances));
  if (config.nb_instances <= 0) {
    return Status::InvalidArgument("config.nb_instances must be > 0");
  }
  CV_RETURN_IF_ERROR(ReadInt(json, "maintenance_cycles", "config",
                             &config.maintenance_cycles));
  CV_RETURN_IF_ERROR(ReadBool(json, "prorate_storage", "config",
                              &config.prorate_storage));
  CV_RETURN_IF_ERROR(ReadMonths(json, "storage_period_milli_months",
                                "config", &config.storage_period));
  CV_RETURN_IF_ERROR(ReadBool(json, "single_compute_session", "config",
                              &config.single_compute_session));
  CV_RETURN_IF_ERROR(ReadString(json, "frontier_solver", "config",
                                &config.frontier_solver));
  if (const JsonValue* candidates = json.Find("candidates")) {
    CV_RETURN_IF_ERROR(RequireObject(*candidates, "config.candidates"));
    CV_RETURN_IF_ERROR(CheckKeys(*candidates, "config.candidates",
                                 {"max_candidates", "max_size_fraction",
                                  "max_rows_fraction",
                                  "maintenance_delta_bytes",
                                  "queries_only"}));
    uint64_t max_candidates = config.candidates.max_candidates;
    CV_RETURN_IF_ERROR(ReadUint(*candidates, "max_candidates",
                                "config.candidates", &max_candidates));
    if (max_candidates == 0) {
      return Status::InvalidArgument(
          "config.candidates.max_candidates must be > 0");
    }
    config.candidates.max_candidates =
        static_cast<size_t>(max_candidates);
    CV_RETURN_IF_ERROR(ReadDouble(*candidates, "max_size_fraction",
                                  "config.candidates",
                                  &config.candidates.max_size_fraction));
    CV_RETURN_IF_ERROR(ReadDouble(*candidates, "max_rows_fraction",
                                  "config.candidates",
                                  &config.candidates.max_rows_fraction));
    CV_RETURN_IF_ERROR(
        ReadDataSize(*candidates, "maintenance_delta_bytes",
                     "config.candidates",
                     &config.candidates.maintenance_delta));
    CV_RETURN_IF_ERROR(ReadBool(*candidates, "queries_only",
                                "config.candidates",
                                &config.candidates.queries_only));
  }
  return config;
}

Result<AdvisorRequestKind> ParseAdvisorRequestKind(std::string_view name) {
  if (name == "solve") return AdvisorRequestKind::kSolve;
  if (name == "frontier") return AdvisorRequestKind::kFrontier;
  if (name == "timeline") return AdvisorRequestKind::kTimeline;
  if (name == "compare-providers") {
    return AdvisorRequestKind::kCompareProviders;
  }
  if (name == "compare-policies") {
    return AdvisorRequestKind::kComparePolicies;
  }
  if (name == "solve-joint") return AdvisorRequestKind::kSolveJoint;
  return Status::InvalidArgument(
      "\"" + std::string(name) +
      "\" is not a request kind; accepted: solve, frontier, timeline, "
      "compare-providers, compare-policies, solve-joint");
}

Result<AdvisorRequest> ParseAdvisorRequest(const JsonValue& json) {
  CV_RETURN_IF_ERROR(RequireObject(json, "request"));
  CV_RETURN_IF_ERROR(CheckKeys(json, "request",
                               {"kind", "session", "solver", "objective",
                                "workload", "timeline", "policy",
                                "policies", "deadline_ms"}));
  AdvisorRequest request;
  std::string kind;
  CV_RETURN_IF_ERROR(ReadString(json, "kind", "request", &kind));
  if (kind.empty()) {
    return Status::InvalidArgument(
        "request.kind is required; accepted: solve, frontier, timeline, "
        "compare-providers, compare-policies, solve-joint");
  }
  CV_ASSIGN_OR_RETURN(request.kind, ParseAdvisorRequestKind(kind));
  CV_RETURN_IF_ERROR(
      ReadString(json, "session", "request", &request.session));
  CV_RETURN_IF_ERROR(ReadString(json, "solver", "request", &request.solver));
  CV_RETURN_IF_ERROR(
      ReadInt(json, "deadline_ms", "request", &request.deadline_ms));
  if (request.deadline_ms < 0) {
    return Status::InvalidArgument("request.deadline_ms must be >= 0");
  }
  if (const JsonValue* objective = json.Find("objective")) {
    CV_ASSIGN_OR_RETURN(request.objective, ParseObjective(*objective));
  }
  if (const JsonValue* workload = json.Find("workload")) {
    CV_ASSIGN_OR_RETURN(request.workload, ParseWorkloadSpec(*workload));
  }
  if (const JsonValue* timeline = json.Find("timeline")) {
    CV_ASSIGN_OR_RETURN(request.timeline, ParseTimelineSpec(*timeline));
  }
  if (const JsonValue* policy = json.Find("policy")) {
    CV_ASSIGN_OR_RETURN(request.policy,
                        ParsePolicy(*policy, "request.policy"));
  }
  if (const JsonValue* policies = json.Find("policies")) {
    if (!policies->is_array()) {
      return Status::InvalidArgument("request.policies must be an array");
    }
    for (const JsonValue& p : policies->items()) {
      CV_ASSIGN_OR_RETURN(ReselectPolicy policy,
                          ParsePolicy(p, "request.policies[i]"));
      request.policies.push_back(policy);
    }
  }
  return request;
}

Result<AdvisorRequest> ParseAdvisorRequestText(std::string_view text) {
  CV_ASSIGN_OR_RETURN(JsonValue json, ParseJson(text));
  return ParseAdvisorRequest(json);
}

JsonValue AdvisorRequestToJson(const AdvisorRequest& request) {
  JsonValue json = JsonValue::Object();
  json.Set("kind", JsonValue::Str(AdvisorRequestKindName(request.kind)));
  if (!request.session.empty()) {
    json.Set("session", JsonValue::Str(request.session));
  }
  if (!request.solver.empty()) {
    json.Set("solver", JsonValue::Str(request.solver));
  }
  json.Set("objective", ObjectiveToJson(request.objective));
  json.Set("workload", WorkloadSpecToJson(request.workload));
  if (request.kind == AdvisorRequestKind::kTimeline ||
      request.kind == AdvisorRequestKind::kComparePolicies) {
    json.Set("timeline", TimelineSpecToJson(request.timeline));
  }
  if (request.kind == AdvisorRequestKind::kTimeline) {
    json.Set("policy", PolicyToJson(request.policy));
  }
  if (request.kind == AdvisorRequestKind::kComparePolicies) {
    JsonValue policies = JsonValue::Array();
    for (const ReselectPolicy& p : request.policies) {
      policies.Push(PolicyToJson(p));
    }
    json.Set("policies", std::move(policies));
  }
  if (request.deadline_ms > 0) {
    json.Set("deadline_ms", JsonValue::Int(request.deadline_ms));
  }
  return json;
}

JsonValue AdvisorResponseToJson(const AdvisorResponse& response) {
  JsonValue json = JsonValue::Object();
  json.Set("kind", JsonValue::Str(AdvisorRequestKindName(response.kind)));
  json.Set("meta", MetaToJson(response.meta));
  switch (response.kind) {
    case AdvisorRequestKind::kSolve:
      json.Set("solve", SolveRunToJson(response.solve));
      break;
    case AdvisorRequestKind::kFrontier:
      json.Set("frontier", FrontierRunToJson(response.frontier));
      break;
    case AdvisorRequestKind::kTimeline:
      json.Set("timeline", TimelineRunToJson(response.timeline));
      break;
    case AdvisorRequestKind::kCompareProviders: {
      JsonValue providers = JsonValue::Array();
      for (const ProviderComparisonRow& row : response.providers) {
        providers.Push(ProviderRowToJson(row));
      }
      json.Set("providers", std::move(providers));
      break;
    }
    case AdvisorRequestKind::kComparePolicies: {
      JsonValue policies = JsonValue::Array();
      for (const TimelineRun& run : response.policies) {
        policies.Push(TimelineRunToJson(run));
      }
      json.Set("policies", std::move(policies));
      break;
    }
    case AdvisorRequestKind::kSolveJoint:
      json.Set("joint", JointRunToJson(response.joint));
      break;
  }
  return json;
}

}  // namespace cloudview
