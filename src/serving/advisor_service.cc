#include "serving/advisor_service.h"

#include <chrono>
#include <utility>
#include <vector>

#include "common/thread_pool.h"

namespace cloudview {

ServeOutcome PendingResponse::Wait() {
  // Help the pool along while blocked: on small machines (or a
  // zero-worker pool) the waiting thread itself runs queued tasks, so
  // SubmitAsync + Wait can never deadlock on pool capacity.
  while (true) {
    {
      MutexLock lock(&mu_);
      if (done_) return outcome_;
    }
    if (!ThreadPool::Global().TryRunOne()) {
      MutexLock lock(&mu_);
      if (done_) return outcome_;
      cv_.WaitFor(mu_, std::chrono::milliseconds(1),
                  [this]() CLOUDVIEW_REQUIRES(mu_) { return done_; });
    }
  }
}

bool PendingResponse::done() const {
  MutexLock lock(&mu_);
  return done_;
}

void PendingResponse::Fulfill(ServeOutcome outcome) {
  {
    MutexLock lock(&mu_);
    done_ = true;
    outcome_ = std::move(outcome);
  }
  cv_.NotifyAll();
}

Result<std::unique_ptr<AdvisorService>> AdvisorService::Create(
    Options options) {
  CV_ASSIGN_OR_RETURN(CloudScenario default_scenario,
                      CloudScenario::Create(options.default_config));
  if (options.batch_max == 0) options.batch_max = 1;
  return std::unique_ptr<AdvisorService>(
      new AdvisorService(std::move(options), std::move(default_scenario)));
}

ServeOutcome AdvisorService::Serve(const AdvisorRequest& request) {
  ServeOutcome outcome;
  if (request.deadline_ms > 0 && request.objective.cancel == nullptr) {
    CancelToken token;
    token.ArmDeadlineAfterMillis(request.deadline_ms);
    AdvisorRequest armed = request;
    armed.objective.cancel = &token;
    outcome = ServeResolved(armed);
  } else {
    outcome = ServeResolved(request);
  }
  CountOutcome(outcome);
  return outcome;
}

ServeOutcome AdvisorService::ServeResolved(const AdvisorRequest& request) {
  ServeOutcome outcome;
  Result<AdvisorResponse> result =
      request.session.empty()
          ? default_scenario_->Dispatch(request)
          : [&]() -> Result<AdvisorResponse> {
              CV_ASSIGN_OR_RETURN(std::shared_ptr<AdvisorSession> session,
                                  sessions_.Find(request.session));
              return session->Serve(request);
            }();
  if (!result.ok()) {
    outcome.status = result.status();
    return outcome;
  }
  outcome.has_response = true;
  outcome.response = std::move(result.value());
  if (outcome.response.meta.cancelled) {
    // Truncated solve: the payload carries the best incumbent and its
    // gap; the status says *why* it was truncated (explicit cancel vs
    // deadline), read off the request's token when one is attached.
    outcome.status =
        request.objective.cancel != nullptr
            ? request.objective.cancel->status()
            : Status::Cancelled("solve truncated by cancellation");
    if (outcome.status.ok()) {
      outcome.status = Status::Cancelled("solve truncated by cancellation");
    }
  }
  return outcome;
}

std::shared_ptr<PendingResponse> AdvisorService::SubmitAsync(
    AdvisorRequest request) {
  QueuedRequest queued;
  queued.pending = std::make_shared<PendingResponse>();
  if (request.deadline_ms > 0 && request.objective.cancel == nullptr) {
    queued.token = std::make_shared<CancelToken>();
    // Armed at submit: time spent queued counts against the deadline.
    queued.token->ArmDeadlineAfterMillis(request.deadline_ms);
    request.objective.cancel = queued.token.get();
  }
  queued.request = std::move(request);
  std::shared_ptr<PendingResponse> handle = queued.pending;

  const std::string key = queued.request.session;
  bool schedule = false;
  {
    MutexLock lock(&queue_mu_);
    queues_[key].push_back(std::move(queued));
    if (!draining_[key]) {
      draining_[key] = true;
      schedule = true;
    }
  }
  if (schedule) {
    ThreadPool::Global().Submit([this, key]() { DrainQueue(key); });
  }
  return handle;
}

void AdvisorService::DrainQueue(const std::string& queue_key) {
  // Pop one batch under the lock, serve it outside. Same-session
  // requests share the session lookup and run back-to-back against a
  // hot warm slot; other sessions' drains proceed on other pool tasks.
  std::vector<QueuedRequest> batch;
  {
    MutexLock lock(&queue_mu_);
    std::deque<QueuedRequest>& queue = queues_[queue_key];
    while (!queue.empty() && batch.size() < options_.batch_max) {
      batch.push_back(std::move(queue.front()));
      queue.pop_front();
    }
  }
  batches_.fetch_add(1, std::memory_order_relaxed);

  for (QueuedRequest& queued : batch) {
    ServeOutcome outcome;
    if (queued.token != nullptr && queued.token->cancelled() &&
        queued.token->status().IsDeadlineExceeded()) {
      // Expired while queued: fail fast, never start the solve.
      outcome.status = Status::DeadlineExceeded(
          "deadline of " + std::to_string(queued.request.deadline_ms) +
          " ms expired while the request was queued");
      deadline_expired_in_queue_.fetch_add(1, std::memory_order_relaxed);
    } else {
      outcome = ServeResolved(queued.request);
    }
    CountOutcome(outcome);
    queued.pending->Fulfill(std::move(outcome));
  }

  bool reschedule = false;
  {
    MutexLock lock(&queue_mu_);
    if (queues_[queue_key].empty()) {
      draining_[queue_key] = false;
    } else {
      reschedule = true;
    }
  }
  if (reschedule) {
    ThreadPool::Global().Submit(
        [this, queue_key]() { DrainQueue(queue_key); });
  }
}

void AdvisorService::CountOutcome(const ServeOutcome& outcome) {
  served_.fetch_add(1, std::memory_order_relaxed);
  if (outcome.status.IsCancelled() ||
      outcome.status.IsDeadlineExceeded()) {
    cancelled_.fetch_add(1, std::memory_order_relaxed);
  } else if (!outcome.status.ok()) {
    failed_.fetch_add(1, std::memory_order_relaxed);
  }
}

AdvisorServiceStats AdvisorService::stats() const {
  AdvisorServiceStats stats;
  stats.served = served_.load(std::memory_order_relaxed);
  stats.failed = failed_.load(std::memory_order_relaxed);
  stats.cancelled = cancelled_.load(std::memory_order_relaxed);
  stats.deadline_expired_in_queue =
      deadline_expired_in_queue_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace cloudview
