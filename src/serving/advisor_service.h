// AdvisorService: the long-lived front door over CloudScenario
// (DESIGN.md §14). Owns the SessionManager and a default (sessionless)
// scenario, arms per-request deadlines as CancelTokens threaded
// through ObjectiveSpec::cancel, and runs an async solve queue on the
// global work-stealing ThreadPool with same-session batching.
//
// Cancellation contract: a deadline never makes a solve error out
// mid-flight — solvers treat an observed token like a node-budget
// cutoff and finalize their best incumbent. The service then reports
// status kCancelled / kDeadlineExceeded *with the partial response
// attached* (ServeOutcome::has_response), so a caller on a budget
// still gets the incumbent and its gap certificate. Only a request
// whose deadline expired while still queued comes back without a
// payload.

#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>

#include "common/cancellation.h"
#include "common/mutex.h"
#include "serving/session_manager.h"

namespace cloudview {

/// \brief One served request: `status` plus — when `has_response` —
/// the payload, which is present even under Cancelled /
/// DeadlineExceeded (best incumbent, meta.cancelled set).
struct ServeOutcome {
  Status status = Status::OK();
  bool has_response = false;
  AdvisorResponse response;
};

/// \brief Completion handle for SubmitAsync. Wait() helps drain the
/// global pool while blocking, so async serving works at any pool
/// concurrency (including zero workers).
class PendingResponse {
 public:
  /// \brief Blocks until the outcome is ready and returns it.
  ServeOutcome Wait();
  /// \brief Non-blocking readiness probe.
  bool done() const CLOUDVIEW_EXCLUDES(mu_);

 private:
  friend class AdvisorService;
  void Fulfill(ServeOutcome outcome) CLOUDVIEW_EXCLUDES(mu_);

  mutable Mutex mu_;
  CondVar cv_;
  bool done_ CLOUDVIEW_GUARDED_BY(mu_) = false;
  ServeOutcome outcome_ CLOUDVIEW_GUARDED_BY(mu_);
};

/// \brief Service-level counters (monotone; read with relaxed loads).
struct AdvisorServiceStats {
  uint64_t served = 0;
  uint64_t failed = 0;
  uint64_t cancelled = 0;
  uint64_t deadline_expired_in_queue = 0;
  uint64_t batches = 0;
};

class AdvisorService {
 public:
  struct Options {
    /// Scenario answering sessionless requests.
    ScenarioConfig default_config;
    SessionManager::Options sessions;
    /// Max requests one async drain task serves for a session before
    /// re-queueing itself (bounds pool-task latency for other
    /// sessions).
    size_t batch_max = 8;
  };

  /// \brief Builds the default scenario eagerly so the first
  /// sessionless request doesn't pay lattice construction.
  static Result<std::unique_ptr<AdvisorService>> Create(Options options);

  SessionManager& sessions() { return sessions_; }
  const CloudScenario& default_scenario() const {
    return *default_scenario_;
  }

  /// \brief Serves synchronously on the calling thread. A positive
  /// request.deadline_ms (with no caller-provided token) is armed as a
  /// CancelToken for the dispatch.
  ServeOutcome Serve(const AdvisorRequest& request);

  /// \brief Enqueues onto the async solve queue (global ThreadPool).
  /// Deadlines are armed at submit time, so queue wait counts against
  /// them; a request whose deadline lapses while queued is failed
  /// without solving. Requests for the same session are drained in
  /// FIFO batches (one session Find per batch); distinct sessions
  /// proceed concurrently. The request is copied; its borrowed inline
  /// pointers, if any, must outlive completion.
  std::shared_ptr<PendingResponse> SubmitAsync(AdvisorRequest request);

  AdvisorServiceStats stats() const;

 private:
  explicit AdvisorService(Options options, CloudScenario default_scenario)
      : options_(std::move(options)),
        sessions_(options_.sessions),
        default_scenario_(std::make_unique<CloudScenario>(
            std::move(default_scenario))) {}

  struct QueuedRequest {
    AdvisorRequest request;
    std::shared_ptr<CancelToken> token;
    std::shared_ptr<PendingResponse> pending;
  };

  /// Serves with the token already armed/attached.
  ServeOutcome ServeResolved(const AdvisorRequest& request);
  /// Pops and serves up to batch_max requests for `queue_key`.
  void DrainQueue(const std::string& queue_key);
  void CountOutcome(const ServeOutcome& outcome);

  Options options_;
  SessionManager sessions_;
  std::unique_ptr<CloudScenario> default_scenario_;

  Mutex queue_mu_;
  // Per-session FIFO queues ("" = sessionless); map iteration order is
  // irrelevant, map keeps it deterministic anyway.
  std::map<std::string, std::deque<QueuedRequest>> queues_
      CLOUDVIEW_GUARDED_BY(queue_mu_);
  // Sessions with a drain task scheduled; guards against one session
  // hogging multiple pool slots.
  std::map<std::string, bool> draining_ CLOUDVIEW_GUARDED_BY(queue_mu_);

  std::atomic<uint64_t> served_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<uint64_t> deadline_expired_in_queue_{0};
  std::atomic<uint64_t> batches_{0};
};

}  // namespace cloudview
