#include "engine/hierarchy.h"

#include "common/logging.h"
#include "common/str_format.h"

namespace cloudview {

HierarchyMap::HierarchyMap(std::vector<std::vector<uint32_t>> parent_of)
    : parent_of_(std::move(parent_of)) {
  // Precompute the finest-to-level-l maps by chaining parents.
  direct_from_finest_.resize(parent_of_.size());
  if (parent_of_.empty()) return;
  direct_from_finest_[0] = parent_of_[0];
  for (size_t l = 1; l < parent_of_.size(); ++l) {
    const std::vector<uint32_t>& prev = direct_from_finest_[l - 1];
    std::vector<uint32_t>& out = direct_from_finest_[l];
    out.resize(prev.size());
    for (size_t v = 0; v < prev.size(); ++v) {
      out[v] = parent_of_[l][prev[v]];
    }
  }
}

Result<HierarchyMap> HierarchyMap::Create(
    const Dimension& dim, std::vector<std::vector<uint32_t>> parent_of) {
  // One parent map per non-ALL level.
  size_t expected_maps = dim.num_levels() - 1;
  if (parent_of.size() != expected_maps) {
    return Status::InvalidArgument(
        StrFormat("dimension '%s' needs %zu parent maps, got %zu",
                  dim.name().c_str(), expected_maps, parent_of.size()));
  }
  for (size_t l = 0; l < expected_maps; ++l) {
    uint64_t card = dim.level(l).cardinality;
    uint64_t parent_card = dim.level(l + 1).cardinality;
    if (parent_of[l].size() != card) {
      return Status::InvalidArgument(StrFormat(
          "level '%s' map has %zu entries, cardinality is %llu",
          dim.level(l).name.c_str(), parent_of[l].size(),
          static_cast<unsigned long long>(card)));
    }
    for (uint32_t parent : parent_of[l]) {
      if (parent >= parent_card) {
        return Status::InvalidArgument(StrFormat(
            "level '%s' has parent id %u out of range (cardinality %llu)",
            dim.level(l).name.c_str(), parent,
            static_cast<unsigned long long>(parent_card)));
      }
    }
  }
  return HierarchyMap(std::move(parent_of));
}

HierarchyMap HierarchyMap::Uniform(const Dimension& dim) {
  std::vector<std::vector<uint32_t>> parent_of;
  parent_of.reserve(dim.num_levels() - 1);
  for (size_t l = 0; l + 1 < dim.num_levels(); ++l) {
    uint64_t card = dim.level(l).cardinality;
    uint64_t parent_card = dim.level(l + 1).cardinality;
    std::vector<uint32_t> map(card);
    for (uint64_t v = 0; v < card; ++v) {
      map[v] = static_cast<uint32_t>(v * parent_card / card);
    }
    parent_of.push_back(std::move(map));
  }
  auto result = Create(dim, std::move(parent_of));
  CV_CHECK(result.ok()) << result.status();
  return result.MoveValue();
}

uint32_t HierarchyMap::RollUp(uint32_t finest_id, size_t level) const {
  if (level == 0) return finest_id;
  CV_CHECK(level <= direct_from_finest_.size()) << "level out of range";
  const std::vector<uint32_t>& map = direct_from_finest_[level - 1];
  CV_CHECK(finest_id < map.size()) << "finest id out of range";
  return map[finest_id];
}

uint32_t HierarchyMap::RollUpFrom(uint32_t id, size_t from_level,
                                  size_t to_level) const {
  CV_CHECK(from_level <= to_level) << "cannot roll down";
  uint32_t v = id;
  for (size_t l = from_level; l < to_level; ++l) {
    CV_CHECK(l < parent_of_.size()) << "level out of range";
    CV_CHECK(v < parent_of_[l].size()) << "id out of range at level " << l;
    v = parent_of_[l][v];
  }
  return v;
}

}  // namespace cloudview
