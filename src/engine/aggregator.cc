#include "engine/aggregator.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "catalog/key_codec.h"
#include "common/logging.h"

namespace cloudview {

namespace {

int64_t CombineAgg(AggFn fn, int64_t a, int64_t b) {
  switch (fn) {
    case AggFn::kSum:
    case AggFn::kCount:
      return a + b;
    case AggFn::kMin:
      return std::min(a, b);
    case AggFn::kMax:
      return std::max(a, b);
  }
  return a;
}

struct Accumulator {
  std::vector<int64_t> aggs;
  uint64_t count = 0;
};

CuboidTable BuildTable(CuboidId target, const KeyCodec& codec,
                       size_t num_measures,
                       std::unordered_map<uint64_t, Accumulator>&& groups) {
  CuboidTable table(target, codec, num_measures);
  for (auto& [packed, acc] : groups) {
    table.AppendRow(codec.Decode(packed), acc.aggs, acc.count);
  }
  table.SortByKey();
  return table;
}

}  // namespace

Result<CuboidTable> AggregateFromBase(const SalesDataset& dataset,
                                      const CubeLattice& lattice,
                                      CuboidId target) {
  const StarSchema& schema = dataset.schema();
  size_t num_measures = schema.measures().size();
  CV_ASSIGN_OR_RETURN(KeyCodec codec, KeyCodec::ForSchema(schema));
  Cuboid cuboid = lattice.CuboidOf(target);

  std::unordered_map<uint64_t, Accumulator> groups;
  for (uint64_t r = 0; r < dataset.sample_rows(); ++r) {
    uint64_t packed = codec.EncodeWith([&](size_t d) {
      return dataset.dim_value_at_level(d, r, cuboid.levels[d]);
    });
    auto [it, inserted] = groups.try_emplace(packed);
    Accumulator& acc = it->second;
    if (inserted) {
      acc.aggs.resize(num_measures);
      for (size_t m = 0; m < num_measures; ++m) {
        acc.aggs[m] = dataset.measure_value(m, r);
      }
      acc.count = 1;
    } else {
      for (size_t m = 0; m < num_measures; ++m) {
        acc.aggs[m] = CombineAgg(schema.measures()[m].agg, acc.aggs[m],
                                 dataset.measure_value(m, r));
      }
      acc.count += 1;
    }
  }
  return BuildTable(target, codec, num_measures, std::move(groups));
}

Result<CuboidTable> AggregateFromView(const SalesDataset& dataset,
                                      const CubeLattice& lattice,
                                      const CuboidTable& source,
                                      CuboidId target) {
  if (!lattice.CanAnswer(source.id(), target)) {
    return Status::FailedPrecondition(
        "source cuboid cannot answer target");
  }
  const StarSchema& schema = dataset.schema();
  size_t num_dims = schema.num_dimensions();
  size_t num_measures = schema.measures().size();
  CV_ASSIGN_OR_RETURN(KeyCodec codec, KeyCodec::ForSchema(schema));
  Cuboid src = lattice.CuboidOf(source.id());
  Cuboid dst = lattice.CuboidOf(target);

  std::unordered_map<uint64_t, Accumulator> groups;
  std::vector<uint32_t> rolled(num_dims);
  for (uint64_t r = 0; r < source.num_rows(); ++r) {
    for (size_t d = 0; d < num_dims; ++d) {
      rolled[d] = dataset.hierarchy(d).RollUpFrom(
          source.key(r, d), src.levels[d], dst.levels[d]);
    }
    uint64_t packed = codec.Encode(rolled);
    auto [it, inserted] = groups.try_emplace(packed);
    Accumulator& acc = it->second;
    if (inserted) {
      acc.aggs.resize(num_measures);
      for (size_t m = 0; m < num_measures; ++m) {
        acc.aggs[m] = source.aggregate(m, r);
      }
      acc.count = source.count(r);
    } else {
      for (size_t m = 0; m < num_measures; ++m) {
        acc.aggs[m] = CombineAgg(schema.measures()[m].agg, acc.aggs[m],
                                 source.aggregate(m, r));
      }
      acc.count += source.count(r);
    }
  }
  return BuildTable(target, codec, num_measures, std::move(groups));
}

Status MergeCuboidTables(const StarSchema& schema, CuboidTable* into,
                         const CuboidTable& delta) {
  CV_CHECK(into != nullptr);
  if (into->id() != delta.id()) {
    return Status::InvalidArgument("merge requires matching cuboids");
  }
  if (into->num_measures() != delta.num_measures() ||
      into->num_dims() != delta.num_dims()) {
    return Status::InvalidArgument("merge requires matching layouts");
  }

  // Rebuild: combine overlapping keys, append new ones. Both tables are
  // re-encoded with `into`'s codec so mixed origins compare correctly.
  const KeyCodec codec = into->codec();
  std::unordered_map<uint64_t, Accumulator> groups;
  groups.reserve(into->num_rows() + delta.num_rows());
  auto absorb = [&](const CuboidTable& table) {
    for (uint64_t r = 0; r < table.num_rows(); ++r) {
      uint64_t packed =
          codec.EncodeWith([&](size_t d) { return table.key(r, d); });
      auto [it, inserted] = groups.try_emplace(packed);
      Accumulator& acc = it->second;
      if (inserted) {
        acc.aggs.resize(table.num_measures());
        for (size_t m = 0; m < table.num_measures(); ++m) {
          acc.aggs[m] = table.aggregate(m, r);
        }
        acc.count = table.count(r);
      } else {
        for (size_t m = 0; m < table.num_measures(); ++m) {
          acc.aggs[m] = CombineAgg(schema.measures()[m].agg, acc.aggs[m],
                                   table.aggregate(m, r));
        }
        acc.count += table.count(r);
      }
    }
  };
  absorb(*into);
  absorb(delta);
  *into = BuildTable(into->id(), codec, into->num_measures(),
                     std::move(groups));
  return Status::OK();
}

}  // namespace cloudview
