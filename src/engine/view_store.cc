#include "engine/view_store.h"

#include "common/str_format.h"

namespace cloudview {

Status ViewStore::Materialize(CuboidTable table) {
  CuboidId id = table.id();
  if (Contains(id)) {
    return Status::AlreadyExists(
        StrFormat("view %s already materialized",
                  lattice_->NameOf(id).c_str()));
  }
  views_.emplace(id, std::move(table));
  return Status::OK();
}

Status ViewStore::Drop(CuboidId id) {
  auto it = views_.find(id);
  if (it == views_.end()) {
    return Status::NotFound(
        StrFormat("view %s not materialized",
                  lattice_->NameOf(id).c_str()));
  }
  views_.erase(it);
  return Status::OK();
}

const CuboidTable* ViewStore::Find(CuboidId id) const {
  auto it = views_.find(id);
  return it == views_.end() ? nullptr : &it->second;
}

CuboidTable* ViewStore::FindMutable(CuboidId id) {
  auto it = views_.find(id);
  return it == views_.end() ? nullptr : &it->second;
}

std::optional<CuboidId> ViewStore::BestSource(CuboidId query) const {
  std::optional<CuboidId> best;
  uint64_t best_rows = 0;
  for (const auto& [id, table] : views_) {
    if (!lattice_->CanAnswer(id, query)) continue;
    uint64_t rows = lattice_->EstimateRows(id);
    if (!best.has_value() || rows < best_rows) {
      best = id;
      best_rows = rows;
    }
  }
  return best;
}

std::vector<CuboidId> ViewStore::MaterializedIds() const {
  std::vector<CuboidId> out;
  out.reserve(views_.size());
  for (const auto& [id, table] : views_) out.push_back(id);
  return out;
}

DataSize ViewStore::TotalLogicalSize() const {
  DataSize total = DataSize::Zero();
  for (const auto& [id, table] : views_) {
    total += lattice_->EstimateSize(id);
  }
  return total;
}

}  // namespace cloudview
