#include "engine/cluster.h"

#include <cmath>

#include "common/logging.h"

namespace cloudview {

namespace {

// Milliseconds to stream `bytes` at `throughput` bytes/second scaled by
// `parallelism`.
double PhaseMillis(DataSize bytes, DataSize throughput, double parallelism) {
  CV_CHECK(throughput.bytes() > 0) << "throughput must be positive";
  CV_CHECK(parallelism > 0.0) << "parallelism must be positive";
  return static_cast<double>(bytes.bytes()) /
         (static_cast<double>(throughput.bytes()) * parallelism) * 1000.0;
}

}  // namespace

Duration MapReduceSimulator::JobTime(DataSize input, DataSize output,
                                     const ClusterSpec& cluster) const {
  CV_CHECK(cluster.nodes > 0) << "cluster needs nodes";
  CV_CHECK(!input.is_negative() && !output.is_negative());
  double ms = static_cast<double>(params_.job_startup.millis());
  ms += PhaseMillis(input, params_.map_throughput_per_unit,
                    cluster.total_compute_units());
  double nodes = static_cast<double>(cluster.nodes);
  ms += PhaseMillis(output, params_.shuffle_throughput_per_node, nodes);
  ms += PhaseMillis(output, params_.write_throughput_per_node, nodes);
  return Duration::FromMillis(static_cast<int64_t>(std::llround(ms)));
}

Duration MapReduceSimulator::QueryTimeFromFact(
    CuboidId target, const ClusterSpec& cluster) const {
  return JobTime(lattice_->fact_scan_size(),
                 lattice_->EstimateSize(target), cluster);
}

Duration MapReduceSimulator::QueryTimeFromView(
    CuboidId source, CuboidId target, const ClusterSpec& cluster) const {
  CV_CHECK(lattice_->CanAnswer(source, target))
      << "source cannot answer target";
  return JobTime(lattice_->EstimateSize(source),
                 lattice_->EstimateSize(target), cluster);
}

Duration MapReduceSimulator::MaterializationTimeFromFact(
    CuboidId view, const ClusterSpec& cluster) const {
  return JobTime(lattice_->fact_scan_size(),
                 lattice_->EstimateSize(view), cluster);
}

Duration MapReduceSimulator::MaterializationTimeFromView(
    CuboidId source, CuboidId view, const ClusterSpec& cluster) const {
  CV_CHECK(lattice_->CanAnswer(source, view))
      << "source cannot materialize view";
  return JobTime(lattice_->EstimateSize(source),
                 lattice_->EstimateSize(view), cluster);
}

Duration MapReduceSimulator::MaintenanceTime(
    CuboidId view, DataSize delta_input, const ClusterSpec& cluster) const {
  DataSize view_size = lattice_->EstimateSize(view);
  // Scan the delta, then merge: read the stored view and rewrite it.
  return JobTime(delta_input + view_size, view_size, cluster);
}

}  // namespace cloudview
