// ClusterSpec and MapReduceSimulator: the simulated Hadoop/Pig substrate.
//
// The paper ran Pig Latin aggregations on a 5-VM Hadoop cluster; query
// processing times are inputs to its cost models. We replace the cluster
// with an analytical timing model of a one-pass MapReduce aggregation:
//
//   t = startup + input/(map_rate x total_compute_units)
//             + output/(shuffle_rate x nodes) + output/(write_rate x nodes)
//
// startup captures job submission/scheduling (not parallelizable — the
// term that makes tiny view-backed queries cheap but never free), the map
// term scans the input (parallel across compute units), and the
// shuffle/write terms handle the grouped output. Defaults are calibrated
// so a full scan of the paper's 10 GB dataset on five 1-ECU instances
// takes ~0.2 h, the paper's per-query scale.

#pragma once

#include <cstdint>

#include "catalog/lattice.h"
#include "common/data_size.h"
#include "common/duration.h"
#include "common/result.h"
#include "pricing/instance_type.h"

namespace cloudview {

/// \brief A homogeneous rented cluster: `nodes` instances of one type
/// (paper Section 4: "a constant number nbIC of identical instances IC").
struct ClusterSpec {
  InstanceType instance;
  int64_t nodes = 1;

  double total_compute_units() const {
    return instance.compute_units * static_cast<double>(nodes);
  }
};

/// \brief Tunable constants of the MapReduce timing model.
struct MapReduceParams {
  /// Per-job fixed overhead (submission, scheduling, container start).
  Duration job_startup = Duration::FromSeconds(45);
  /// Map-side scan throughput per compute unit.
  DataSize map_throughput_per_unit = DataSize::FromMB(3);
  /// Shuffle/sort throughput per node, applied to the grouped output.
  DataSize shuffle_throughput_per_node = DataSize::FromMB(12);
  /// Reduce-side write throughput per node (HDFS replication included).
  DataSize write_throughput_per_node = DataSize::FromMB(24);
};

/// \brief Analytic wall-clock estimates for aggregation jobs on a
/// simulated cluster.
class MapReduceSimulator {
 public:
  /// \brief The simulator keeps a reference; `lattice` must outlive it.
  MapReduceSimulator(const CubeLattice& lattice, MapReduceParams params)
      : lattice_(&lattice), params_(params) {}

  const MapReduceParams& params() const { return params_; }

  /// \brief Wall-clock of one aggregation job reading `input` and
  /// emitting `output` on `cluster`.
  Duration JobTime(DataSize input, DataSize output,
                   const ClusterSpec& cluster) const;

  /// \brief Time to answer cuboid `target` by scanning the raw fact
  /// table (no materialized view available).
  Duration QueryTimeFromFact(CuboidId target,
                             const ClusterSpec& cluster) const;

  /// \brief Time to answer cuboid `target` from the materialized cuboid
  /// `source` (which must be able to answer it).
  Duration QueryTimeFromView(CuboidId source, CuboidId target,
                             const ClusterSpec& cluster) const;

  /// \brief Time to materialize `view` from the raw fact table
  /// (paper Formula 7's t_materialization(Vk)).
  Duration MaterializationTimeFromFact(CuboidId view,
                                       const ClusterSpec& cluster) const;

  /// \brief Time to materialize `view` by rolling up an existing
  /// materialized cuboid `source`.
  Duration MaterializationTimeFromView(CuboidId source, CuboidId view,
                                       const ClusterSpec& cluster) const;

  /// \brief Time to incrementally maintain `view` against a batch of
  /// `delta_input` logical bytes of new facts: scan the delta, aggregate,
  /// and merge into the stored view (read + rewrite)
  /// (paper Formula 11's t_maintenance(Vk)).
  Duration MaintenanceTime(CuboidId view, DataSize delta_input,
                           const ClusterSpec& cluster) const;

  const CubeLattice& lattice() const { return *lattice_; }

 private:
  const CubeLattice* lattice_;
  MapReduceParams params_;
};

}  // namespace cloudview

