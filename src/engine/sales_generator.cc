#include "engine/sales_generator.h"

#include <utility>
#include <vector>

#include "common/random.h"
#include "common/str_format.h"

namespace cloudview {

namespace {

Status ValidateConfig(const SalesConfig& config) {
  if (config.years == 0 || config.months_per_year == 0 ||
      config.days_per_month == 0) {
    return Status::InvalidArgument("calendar sizes must be positive");
  }
  if (config.countries == 0 || config.regions_per_country == 0 ||
      config.departments_per_region == 0) {
    return Status::InvalidArgument("geography sizes must be positive");
  }
  if (config.sample_rows == 0) {
    return Status::InvalidArgument("sample_rows must be positive");
  }
  if (config.bytes_per_fact_row <= 0 || config.bytes_per_view_row <= 0) {
    return Status::InvalidArgument("row widths must be positive");
  }
  if (config.logical_rows() < config.sample_rows) {
    return Status::InvalidArgument(StrFormat(
        "logical rows (%llu) smaller than sample rows (%llu); shrink the "
        "sample or grow logical_size",
        static_cast<unsigned long long>(config.logical_rows()),
        static_cast<unsigned long long>(config.sample_rows)));
  }
  if (config.min_profit_cents > config.max_profit_cents) {
    return Status::InvalidArgument("profit range is empty");
  }
  return Status::OK();
}

Result<SalesDataset> GenerateRows(const SalesConfig& config, uint64_t rows,
                                  uint64_t seed) {
  CV_RETURN_IF_ERROR(ValidateConfig(config));
  CV_ASSIGN_OR_RETURN(StarSchema schema, MakeSalesSchema(config));
  // The sample stands for `rows` out of the logical table; keep the
  // schema's logical row count (set by MakeSalesSchema).

  std::vector<HierarchyMap> hierarchies;
  hierarchies.reserve(schema.num_dimensions());
  for (size_t d = 0; d < schema.num_dimensions(); ++d) {
    hierarchies.push_back(HierarchyMap::Uniform(schema.dimension(d)));
  }

  Rng rng(seed);
  ZipfDistribution day_dist(config.num_days(), config.day_skew);
  ZipfDistribution dept_dist(config.num_departments(),
                             config.department_skew);

  std::vector<uint32_t> day_col(rows);
  std::vector<uint32_t> dept_col(rows);
  std::vector<int64_t> profit_col(rows);
  for (uint64_t r = 0; r < rows; ++r) {
    // Scramble zipf ranks so hot days/departments are spread through the
    // id space rather than clustered at id 0.
    uint64_t day_rank = day_dist.Sample(rng);
    uint64_t dept_rank = dept_dist.Sample(rng);
    day_col[r] = static_cast<uint32_t>(
        (day_rank * 2654435761ULL) % config.num_days());
    dept_col[r] = static_cast<uint32_t>(
        (dept_rank * 2654435761ULL) % config.num_departments());
    profit_col[r] =
        rng.UniformInt(config.min_profit_cents, config.max_profit_cents);
  }

  return SalesDataset::Create(
      std::move(schema), std::move(hierarchies),
      {std::move(day_col), std::move(dept_col)}, {std::move(profit_col)});
}

}  // namespace

Result<StarSchema> MakeSalesSchema(const SalesConfig& config) {
  CV_RETURN_IF_ERROR(ValidateConfig(config));
  CV_ASSIGN_OR_RETURN(
      Dimension time,
      Dimension::Create("Time", {{"day", config.num_days()},
                                 {"month", config.num_months()},
                                 {"year", config.years}}));
  CV_ASSIGN_OR_RETURN(
      Dimension geo,
      Dimension::Create("Geography",
                        {{"department", config.num_departments()},
                         {"region", config.num_regions()},
                         {"country", config.countries}}));
  PhysicalStats stats;
  stats.fact_rows = config.logical_rows();
  stats.bytes_per_fact_row = config.bytes_per_fact_row;
  stats.bytes_per_view_row = config.bytes_per_view_row;
  return StarSchema::Create("sales", {std::move(time), std::move(geo)},
                            {Measure{"profit", AggFn::kSum}}, stats);
}

Result<SalesDataset> GenerateSalesDataset(const SalesConfig& config) {
  return GenerateRows(config, config.sample_rows, config.seed);
}

Result<SalesDataset> GenerateSalesDelta(const SalesConfig& config,
                                        uint64_t delta_rows,
                                        uint64_t delta_seed) {
  if (delta_rows == 0) {
    return Status::InvalidArgument("delta must have rows");
  }
  SalesConfig delta_config = config;
  delta_config.sample_rows = delta_rows;
  // A delta's logical size scales with the base's scale factor.
  double scale = static_cast<double>(config.logical_rows()) /
                 static_cast<double>(config.sample_rows);
  delta_config.logical_size = DataSize::FromBytes(static_cast<int64_t>(
      static_cast<double>(delta_rows) * scale * config.bytes_per_fact_row));
  return GenerateRows(delta_config, delta_rows,
                      delta_seed ^ 0x5DE1A5EEDULL);
}

}  // namespace cloudview
