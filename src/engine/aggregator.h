// Hash aggregation: compute a cuboid from the fact sample or by rolling
// up a finer cuboid (the operation a materialized view saves).

#pragma once

#include "catalog/lattice.h"
#include "common/result.h"
#include "engine/cuboid_table.h"
#include "engine/sales_dataset.h"

namespace cloudview {

/// \brief Aggregates the fact sample directly to `target`.
Result<CuboidTable> AggregateFromBase(const SalesDataset& dataset,
                                      const CubeLattice& lattice,
                                      CuboidId target);

/// \brief Rolls a finer cuboid up to `target`. `source` must be able to
/// answer `target` (CanAnswer); otherwise FailedPrecondition.
/// SUM/COUNT/MIN/MAX all compose correctly under re-aggregation.
Result<CuboidTable> AggregateFromView(const SalesDataset& dataset,
                                      const CubeLattice& lattice,
                                      const CuboidTable& source,
                                      CuboidId target);

/// \brief Merges `delta` (same cuboid) into `into` — the kernel of
/// incremental view maintenance. Keys present in both are combined with
/// the measure's aggregate function; new keys are appended.
Status MergeCuboidTables(const StarSchema& schema, CuboidTable* into,
                         const CuboidTable& delta);

}  // namespace cloudview

