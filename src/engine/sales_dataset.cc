#include "engine/sales_dataset.h"

#include "common/logging.h"
#include "common/str_format.h"

namespace cloudview {

Result<SalesDataset> SalesDataset::Create(
    StarSchema schema, std::vector<HierarchyMap> hierarchies,
    std::vector<std::vector<uint32_t>> dim_columns,
    std::vector<std::vector<int64_t>> measure_columns) {
  if (hierarchies.size() != schema.num_dimensions()) {
    return Status::InvalidArgument("one hierarchy per dimension required");
  }
  if (dim_columns.size() != schema.num_dimensions()) {
    return Status::InvalidArgument("one id column per dimension required");
  }
  if (measure_columns.size() != schema.measures().size()) {
    return Status::InvalidArgument("one column per measure required");
  }
  if (dim_columns.empty() || dim_columns[0].empty()) {
    return Status::InvalidArgument("dataset sample must not be empty");
  }
  size_t rows = dim_columns[0].size();
  for (size_t d = 0; d < dim_columns.size(); ++d) {
    if (dim_columns[d].size() != rows) {
      return Status::InvalidArgument(
          StrFormat("dimension column %zu length mismatch", d));
    }
    uint64_t card = schema.dimension(d).level(0).cardinality;
    for (uint32_t v : dim_columns[d]) {
      if (v >= card) {
        return Status::InvalidArgument(StrFormat(
            "dimension %zu id %u out of range (cardinality %llu)", d, v,
            static_cast<unsigned long long>(card)));
      }
    }
  }
  for (size_t m = 0; m < measure_columns.size(); ++m) {
    if (measure_columns[m].size() != rows) {
      return Status::InvalidArgument(
          StrFormat("measure column %zu length mismatch", m));
    }
  }
  if (schema.stats().fact_rows < rows) {
    return Status::InvalidArgument(
        "logical fact rows must be >= sample rows");
  }
  return SalesDataset(std::move(schema), std::move(hierarchies),
                      std::move(dim_columns), std::move(measure_columns),
                      rows);
}

const HierarchyMap& SalesDataset::hierarchy(size_t dim) const {
  CV_CHECK(dim < hierarchies_.size()) << "dimension out of range";
  return hierarchies_[dim];
}

}  // namespace cloudview
