#include "engine/executor.h"

#include "engine/aggregator.h"

namespace cloudview {

ExecutionPlan QueryExecutor::Plan(CuboidId query) const {
  ExecutionPlan plan;
  plan.query = query;
  std::optional<CuboidId> source = views_->BestSource(query);
  plan.from_view = source.has_value();
  if (plan.from_view) {
    plan.source = *source;
    plan.input_bytes = lattice_->EstimateSize(plan.source);
    plan.input_rows = lattice_->EstimateRows(plan.source);
  } else {
    plan.source = lattice_->base_id();  // Meaning: scan the fact table.
    plan.input_bytes = lattice_->fact_scan_size();
    plan.input_rows = lattice_->schema().stats().fact_rows;
  }
  plan.result_bytes = lattice_->EstimateSize(query);
  plan.result_rows = lattice_->EstimateRows(query);
  return plan;
}

Result<CuboidTable> QueryExecutor::Execute(CuboidId query) const {
  return ExecutePlan(Plan(query));
}

Result<CuboidTable> QueryExecutor::ExecutePlan(
    const ExecutionPlan& plan) const {
  if (!plan.from_view) {
    return AggregateFromBase(*dataset_, *lattice_, plan.query);
  }
  const CuboidTable* source = views_->Find(plan.source);
  if (source == nullptr) {
    return Status::NotFound("planned view is not materialized");
  }
  return AggregateFromView(*dataset_, *lattice_, *source, plan.query);
}

}  // namespace cloudview
