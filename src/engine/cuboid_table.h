// CuboidTable: a materialized group-by result (one row per distinct key
// combination, one aggregate column per measure plus a row count).

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "catalog/key_codec.h"
#include "catalog/lattice.h"
#include "catalog/schema.h"
#include "common/result.h"

namespace cloudview {

/// \brief A group-by result at a given cuboid.
///
/// Keys are stored flat: row r's key on dimension d is
/// keys[r * num_dims + d] (the value id at the cuboid's level of d).
/// aggregates[m][r] is measure m's aggregate in row r; counts[r] is the
/// number of contributing fact rows. The KeyCodec packs whole keys into
/// uint64 for indexing and canonical ordering.
class CuboidTable {
 public:
  /// \brief Table with an explicit key codec (required beyond two
  /// dimensions; use KeyCodec::ForSchema).
  CuboidTable(CuboidId id, KeyCodec codec, size_t num_measures)
      : id_(id), codec_(std::move(codec)) {
    aggregates_.resize(num_measures);
  }

  /// \brief Legacy layout: up to two dimensions at 32 bits each.
  CuboidTable(CuboidId id, size_t num_dims, size_t num_measures)
      : CuboidTable(id, KeyCodec::Fixed32(num_dims), num_measures) {}

  CuboidId id() const { return id_; }
  size_t num_dims() const { return codec_.num_dims(); }
  size_t num_measures() const { return aggregates_.size(); }
  uint64_t num_rows() const { return counts_.size(); }
  const KeyCodec& codec() const { return codec_; }

  uint32_t key(uint64_t row, size_t dim) const {
    return keys_[row * num_dims() + dim];
  }
  int64_t aggregate(size_t measure, uint64_t row) const {
    return aggregates_[measure][row];
  }
  uint64_t count(uint64_t row) const { return counts_[row]; }

  /// \brief Appends a row; `key` has one id per dimension, `aggs` one
  /// value per measure.
  void AppendRow(const std::vector<uint32_t>& key,
                 const std::vector<int64_t>& aggs, uint64_t count);

  /// \brief Row r's key packed by this table's codec.
  uint64_t PackKey(uint64_t row) const;

  /// \brief Packs a free-standing key with the legacy 32-bit layout
  /// (convenience for two-dimensional tests).
  static uint64_t PackKey(const std::vector<uint32_t>& key);

  /// \brief Builds (or rebuilds) the packed-key -> row index.
  const std::unordered_map<uint64_t, uint64_t>& KeyIndex() const;

  /// \brief Total of measure `m` across all rows (grand total; invariant
  /// under roll-up — the pillar of the engine's property tests).
  int64_t TotalAggregate(size_t measure) const;

  /// \brief Total contributing fact rows.
  uint64_t TotalCount() const;

  /// \brief Canonical ordering (sorted by packed key) for comparisons.
  void SortByKey();

 private:
  CuboidId id_;
  KeyCodec codec_;
  std::vector<uint32_t> keys_;
  std::vector<std::vector<int64_t>> aggregates_;
  std::vector<uint64_t> counts_;
  /// Lazily built by const KeyIndex().
  /// thread-compat: unsynchronized memo — tables are built and queried
  /// single-threaded (the engine simulator is sequential).
  mutable std::unordered_map<uint64_t, uint64_t> key_index_;
  mutable bool index_valid_ = false;
};

/// \brief True when the tables hold identical rows (order-insensitive;
/// keys are compared dimension-wise, so differing codecs are fine).
bool CuboidTablesEqual(const CuboidTable& a, const CuboidTable& b);

}  // namespace cloudview

