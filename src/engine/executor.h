// QueryExecutor: plans and executes roll-up queries against the base
// table or the best materialized view.

#pragma once

#include <cstdint>

#include "catalog/lattice.h"
#include "common/data_size.h"
#include "common/result.h"
#include "engine/cuboid_table.h"
#include "engine/sales_dataset.h"
#include "engine/view_store.h"

namespace cloudview {

/// \brief Where a query's answer comes from and the logical volumes
/// involved (inputs to the timing and cost models).
struct ExecutionPlan {
  CuboidId query = 0;
  CuboidId source = 0;
  bool from_view = false;
  /// Logical bytes scanned (the source cuboid's estimated size).
  DataSize input_bytes;
  /// Logical bytes of the result (the query cuboid's estimated size) —
  /// also the volume transferred out to the client.
  DataSize result_bytes;
  uint64_t input_rows = 0;
  uint64_t result_rows = 0;
};

/// \brief Plans against a ViewStore and executes on the sample data.
class QueryExecutor {
 public:
  /// \brief Keeps references; all three must outlive the executor.
  QueryExecutor(const SalesDataset& dataset, const CubeLattice& lattice,
                const ViewStore& views)
      : dataset_(&dataset), lattice_(&lattice), views_(&views) {}

  /// \brief Chooses the best source for `query` (fewest estimated rows
  /// among materialized answering views and the base table).
  ExecutionPlan Plan(CuboidId query) const;

  /// \brief Executes `query` via its plan, on the sample rows.
  Result<CuboidTable> Execute(CuboidId query) const;

  /// \brief Executes a specific plan (used by tests to force a source).
  Result<CuboidTable> ExecutePlan(const ExecutionPlan& plan) const;

 private:
  const SalesDataset* dataset_;
  const CubeLattice* lattice_;
  const ViewStore* views_;
};

}  // namespace cloudview

