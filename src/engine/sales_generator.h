// SalesGenerator: deterministic synthetic data for the paper's running
// example (Table 1) — an international supply chain's sales with a Time
// hierarchy (day/month/year) and a Geography hierarchy
// (department/region/country).
//
// The generator is the stand-in for the paper's real 500 GB dataset (and
// its 10 GB experimental subset): seeded, reproducible, with the logical
// dataset size configured independently of the in-memory sample.

#pragma once

#include <cstdint>

#include "common/data_size.h"
#include "common/result.h"
#include "engine/sales_dataset.h"

namespace cloudview {

/// \brief Shape of the synthetic sales world. Defaults produce the
/// paper's 2000-2010 dataset with plausible retail cardinalities.
struct SalesConfig {
  /// Calendar span (paper: 10 years of data, 2000-2010 -> 11 years).
  uint32_t years = 11;
  /// Simplified calendar: every month has 30 days, every year 12 months
  /// (keeps uniform hierarchies exact).
  uint32_t months_per_year = 12;
  uint32_t days_per_month = 30;

  /// Geography sizes: countries x regions/country x departments/region.
  uint32_t countries = 25;
  uint32_t regions_per_country = 8;
  uint32_t departments_per_region = 12;

  /// Logical fact-table size the cloud stores/scans (paper §6: 10 GB).
  DataSize logical_size = DataSize::FromGB(10);
  /// Stored bytes per fact row (Table-1-like text row).
  int64_t bytes_per_fact_row = 100;
  /// Bytes per materialized-view row.
  int64_t bytes_per_view_row = 32;

  /// In-memory sample rows actually generated and aggregated.
  uint64_t sample_rows = 200'000;

  /// Skew of sales across departments (Zipf theta; 0 = uniform).
  double department_skew = 0.6;
  /// Skew of sales across days (seasonality stand-in).
  double day_skew = 0.2;

  /// Profit per sale, uniform in [min,max] cents.
  int64_t min_profit_cents = 1'000;
  int64_t max_profit_cents = 900'00;

  uint64_t seed = 20120330;  // DanaC 2012 workshop date.

  uint32_t num_days() const { return years * months_per_year * days_per_month; }
  uint32_t num_months() const { return years * months_per_year; }
  uint32_t num_departments() const {
    return countries * regions_per_country * departments_per_region;
  }
  uint32_t num_regions() const { return countries * regions_per_country; }

  /// \brief Logical fact rows implied by logical_size / bytes_per_fact_row.
  uint64_t logical_rows() const {
    return static_cast<uint64_t>(logical_size.bytes() / bytes_per_fact_row);
  }
};

/// \brief Builds the StarSchema implied by a SalesConfig (dimensions Time
/// and Geography, measure "profit" SUM).
Result<StarSchema> MakeSalesSchema(const SalesConfig& config);

/// \brief Generates the sample dataset for a SalesConfig. Deterministic in
/// config.seed.
Result<SalesDataset> GenerateSalesDataset(const SalesConfig& config);

/// \brief Generates a *delta* batch (new sales appended later), sharing
/// the base dataset's schema and hierarchies; used for incremental view
/// maintenance. `delta_rows` sample rows represent
/// `delta_rows * base.scale_factor()` logical rows.
Result<SalesDataset> GenerateSalesDelta(const SalesConfig& config,
                                        uint64_t delta_rows,
                                        uint64_t delta_seed);

}  // namespace cloudview

