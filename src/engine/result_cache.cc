#include "engine/result_cache.h"

namespace cloudview {

const CuboidTable* ResultCache::Lookup(CuboidId query) {
  auto it = entries_.find(query);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  // Move to MRU position.
  lru_.splice(lru_.begin(), lru_, it->second);
  return &it->second->second.table;
}

void ResultCache::Insert(CuboidTable result) {
  CuboidId id = result.id();
  DataSize charge = lattice_->EstimateSize(id);
  if (charge > capacity_) return;  // Would never fit.

  auto it = entries_.find(id);
  if (it != entries_.end()) {
    used_ -= it->second->second.charge;
    lru_.erase(it->second);
    entries_.erase(it);
  }
  EvictToFit(charge);
  lru_.emplace_front(id, Entry{std::move(result), charge});
  entries_[id] = lru_.begin();
  used_ += charge;
}

void ResultCache::Invalidate() {
  lru_.clear();
  entries_.clear();
  used_ = DataSize::Zero();
}

void ResultCache::EvictToFit(DataSize incoming) {
  while (!lru_.empty() && used_ + incoming > capacity_) {
    auto& [victim_id, victim] = lru_.back();
    used_ -= victim.charge;
    entries_.erase(victim_id);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

}  // namespace cloudview
