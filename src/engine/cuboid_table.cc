#include "engine/cuboid_table.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace cloudview {

void CuboidTable::AppendRow(const std::vector<uint32_t>& key,
                            const std::vector<int64_t>& aggs,
                            uint64_t count) {
  CV_CHECK(key.size() == num_dims()) << "key width mismatch";
  CV_CHECK(aggs.size() == aggregates_.size()) << "aggregate width mismatch";
  keys_.insert(keys_.end(), key.begin(), key.end());
  for (size_t m = 0; m < aggs.size(); ++m) {
    aggregates_[m].push_back(aggs[m]);
  }
  counts_.push_back(count);
  index_valid_ = false;
}

uint64_t CuboidTable::PackKey(uint64_t row) const {
  return codec_.EncodeWith(
      [&](size_t d) { return keys_[row * num_dims() + d]; });
}

uint64_t CuboidTable::PackKey(const std::vector<uint32_t>& key) {
  return KeyCodec::Fixed32(key.size()).Encode(key);
}

const std::unordered_map<uint64_t, uint64_t>& CuboidTable::KeyIndex()
    const {
  if (!index_valid_) {
    key_index_.clear();
    key_index_.reserve(num_rows());
    for (uint64_t r = 0; r < num_rows(); ++r) {
      key_index_[PackKey(r)] = r;
    }
    index_valid_ = true;
  }
  return key_index_;
}

int64_t CuboidTable::TotalAggregate(size_t measure) const {
  CV_CHECK(measure < aggregates_.size()) << "measure out of range";
  return std::accumulate(aggregates_[measure].begin(),
                         aggregates_[measure].end(), int64_t{0});
}

uint64_t CuboidTable::TotalCount() const {
  return std::accumulate(counts_.begin(), counts_.end(), uint64_t{0});
}

void CuboidTable::SortByKey() {
  std::vector<uint64_t> order(num_rows());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](uint64_t a, uint64_t b) {
    return PackKey(a) < PackKey(b);
  });

  size_t nd = num_dims();
  std::vector<uint32_t> keys(keys_.size());
  std::vector<std::vector<int64_t>> aggs(aggregates_.size());
  std::vector<uint64_t> counts(counts_.size());
  for (auto& column : aggs) column.resize(counts_.size());
  for (uint64_t to = 0; to < order.size(); ++to) {
    uint64_t from = order[to];
    for (size_t d = 0; d < nd; ++d) {
      keys[to * nd + d] = keys_[from * nd + d];
    }
    for (size_t m = 0; m < aggregates_.size(); ++m) {
      aggs[m][to] = aggregates_[m][from];
    }
    counts[to] = counts_[from];
  }
  keys_ = std::move(keys);
  aggregates_ = std::move(aggs);
  counts_ = std::move(counts);
  index_valid_ = false;
}

bool CuboidTablesEqual(const CuboidTable& a, const CuboidTable& b) {
  if (a.id() != b.id() || a.num_dims() != b.num_dims() ||
      a.num_measures() != b.num_measures() ||
      a.num_rows() != b.num_rows()) {
    return false;
  }
  const auto& index = a.KeyIndex();
  for (uint64_t rb = 0; rb < b.num_rows(); ++rb) {
    // Re-encode b's key with a's codec (dimension-wise comparison).
    uint64_t packed = a.codec().EncodeWith(
        [&](size_t d) { return b.key(rb, d); });
    auto it = index.find(packed);
    if (it == index.end()) return false;
    uint64_t ra = it->second;
    for (size_t d = 0; d < a.num_dims(); ++d) {
      if (a.key(ra, d) != b.key(rb, d)) return false;
    }
    if (a.count(ra) != b.count(rb)) return false;
    for (size_t m = 0; m < a.num_measures(); ++m) {
      if (a.aggregate(m, ra) != b.aggregate(m, rb)) return false;
    }
  }
  return true;
}

}  // namespace cloudview
