// HierarchyMap: concrete roll-up functions for one dimension.
//
// The catalog's Dimension declares level *cardinalities*; HierarchyMap binds
// them to actual parent pointers (e.g. day 371 -> month 12 -> year 1 ->
// ALL 0), so the engine can roll any finest-level id up to any level.

#pragma once

#include <cstdint>
#include <vector>

#include "catalog/dimension.h"
#include "common/result.h"

namespace cloudview {

/// \brief Parent maps for every level of one dimension.
///
/// parent_of[l][v] is the id at level l+1 of value v at level l. The last
/// (coarsest non-ALL) level maps everything to the single ALL value 0.
class HierarchyMap {
 public:
  /// \brief Validates the maps against `dim`: one map per non-ALL level,
  /// map l has dim.level(l).cardinality entries, every entry is a valid
  /// id at level l+1.
  static Result<HierarchyMap> Create(
      const Dimension& dim, std::vector<std::vector<uint32_t>> parent_of);

  /// \brief Uniform hierarchy: level-l value v has parent
  /// v * card(l+1) / card(l) (block roll-up). Exact when cardinalities
  /// divide evenly, which our generators guarantee.
  static HierarchyMap Uniform(const Dimension& dim);

  /// \brief Rolls a finest-level id up to `level` (0 returns the id
  /// itself; all_level returns 0).
  uint32_t RollUp(uint32_t finest_id, size_t level) const;

  /// \brief Rolls an id at `from_level` up to `to_level` (>= from_level).
  uint32_t RollUpFrom(uint32_t id, size_t from_level, size_t to_level) const;

  size_t num_levels() const { return direct_from_finest_.size() + 1; }

 private:
  explicit HierarchyMap(std::vector<std::vector<uint32_t>> parent_of);

  // parent_of_[l][v]: id at level l+1 of value v at level l.
  std::vector<std::vector<uint32_t>> parent_of_;
  // direct_from_finest_[l][v]: id at level l+1 of finest id v (chained).
  std::vector<std::vector<uint32_t>> direct_from_finest_;
};

}  // namespace cloudview

