// ViewStore: the set of materialized cuboids living in the cloud, with
// best-source lookup for query answering.

#pragma once

#include <map>
#include <optional>
#include <vector>

#include "catalog/lattice.h"
#include "common/data_size.h"
#include "common/status.h"
#include "engine/cuboid_table.h"

namespace cloudview {

/// \brief Holds materialized CuboidTables keyed by cuboid id.
///
/// The base fact table is always implicitly available; BestSource falls
/// back to it when no materialized view can answer a query.
class ViewStore {
 public:
  /// \brief The store keeps a reference; `lattice` must outlive it.
  explicit ViewStore(const CubeLattice& lattice) : lattice_(&lattice) {}

  /// \brief Adds a materialized view; AlreadyExists if present.
  Status Materialize(CuboidTable table);

  /// \brief Removes a view; NotFound if absent.
  Status Drop(CuboidId id);

  bool Contains(CuboidId id) const { return views_.count(id) > 0; }

  /// \brief Borrow a materialized table; nullptr when absent.
  const CuboidTable* Find(CuboidId id) const;
  CuboidTable* FindMutable(CuboidId id);

  /// \brief The cheapest materialized view able to answer `query` (the
  /// one with the fewest estimated rows), or nullopt when no view can —
  /// the caller then scans the raw fact table.
  std::optional<CuboidId> BestSource(CuboidId query) const;

  /// \brief Ids of all materialized views, ascending.
  std::vector<CuboidId> MaterializedIds() const;

  size_t size() const { return views_.size(); }
  bool empty() const { return views_.empty(); }

  /// \brief Sum of the views' *logical* sizes (lattice estimates) — the
  /// extra storage the cloud bills for (paper Section 4.3).
  DataSize TotalLogicalSize() const;

  const CubeLattice& lattice() const { return *lattice_; }

 private:
  const CubeLattice* lattice_;
  std::map<CuboidId, CuboidTable> views_;
};

}  // namespace cloudview

