// ResultCache: client-side query-result caching — the paper's Section 8
// "incorporate indexing, caching and/or fragmentation" item, in the
// spirit of the self-tuned cloud caching it cites [16].
//
// An LRU cache over CuboidTable results with a byte capacity (logical
// bytes, from the lattice estimate). A cached result answers repeats of
// the same query for free; the cost models see that as a zero-time,
// zero-transfer query execution.

#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "catalog/lattice.h"
#include "common/data_size.h"
#include "engine/cuboid_table.h"

namespace cloudview {

/// \brief Hit/miss accounting for a cache run.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;

  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(total);
  }
};

/// \brief LRU cache of query results keyed by cuboid id.
class ResultCache {
 public:
  /// \brief `capacity` bounds the sum of cached results' logical sizes
  /// (lattice estimates). The lattice must outlive the cache.
  ResultCache(const CubeLattice& lattice, DataSize capacity)
      : lattice_(&lattice), capacity_(capacity) {}

  /// \brief Cached result for `query`, or nullptr (counts hit/miss).
  const CuboidTable* Lookup(CuboidId query);

  /// \brief Inserts (or refreshes) a result. Results larger than the
  /// whole capacity are not cached. Evicts LRU entries to fit.
  void Insert(CuboidTable result);

  /// \brief Drops everything (e.g. after base-data updates invalidate
  /// all derived results).
  void Invalidate();

  const CacheStats& stats() const { return stats_; }
  DataSize used() const { return used_; }
  DataSize capacity() const { return capacity_; }
  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    CuboidTable table;
    DataSize charge;
  };

  void EvictToFit(DataSize incoming);

  const CubeLattice* lattice_;
  DataSize capacity_;
  DataSize used_;
  // MRU at the front.
  std::list<std::pair<CuboidId, Entry>> lru_;
  std::unordered_map<CuboidId, decltype(lru_)::iterator> entries_;
  CacheStats stats_;
};

}  // namespace cloudview

