// SalesDataset: the paper's supply-chain fact data (Table 1), held
// columnar, with the hierarchy maps needed to roll rows up to any cuboid.
//
// The *logical* dataset (what the cloud stores and scans: e.g. 10 GB or
// 500 GB) is decoupled from the *sample* rows held in memory: the sample
// drives correctness (real aggregation results), the logical statistics
// drive timing and cost. scale_factor() relates the two.

#pragma once

#include <cstdint>
#include <vector>

#include "catalog/lattice.h"
#include "catalog/schema.h"
#include "common/data_size.h"
#include "common/result.h"
#include "engine/hierarchy.h"

namespace cloudview {

/// \brief Columnar fact sample plus schema, hierarchies, and the logical
/// row count it represents.
class SalesDataset {
 public:
  /// \brief Assembles a dataset; validates that column lengths agree, ids
  /// are in range, and there is one hierarchy per dimension.
  /// `dim_columns[d][r]` is row r's finest-level id on dimension d;
  /// `measure_columns[m][r]` is row r's value of measure m (cents).
  static Result<SalesDataset> Create(
      StarSchema schema, std::vector<HierarchyMap> hierarchies,
      std::vector<std::vector<uint32_t>> dim_columns,
      std::vector<std::vector<int64_t>> measure_columns);

  const StarSchema& schema() const { return schema_; }
  const HierarchyMap& hierarchy(size_t dim) const;

  /// \brief In-memory sample rows.
  uint64_t sample_rows() const { return sample_rows_; }

  /// \brief Logical fact rows (schema().stats().fact_rows).
  uint64_t logical_rows() const { return schema_.stats().fact_rows; }

  /// \brief logical_rows / sample_rows: multiply sample aggregates by this
  /// to approximate logical magnitudes.
  double scale_factor() const {
    return static_cast<double>(logical_rows()) /
           static_cast<double>(sample_rows_);
  }

  /// \brief Logical on-disk size of the fact table.
  DataSize logical_size() const { return schema_.fact_size(); }

  /// \brief Row r's finest-level id on dimension d.
  uint32_t dim_value(size_t dim, uint64_t row) const {
    return dim_columns_[dim][row];
  }

  /// \brief Row r's id on dimension d rolled up to `level`.
  uint32_t dim_value_at_level(size_t dim, uint64_t row,
                              size_t level) const {
    return hierarchies_[dim].RollUp(dim_columns_[dim][row], level);
  }

  /// \brief Row r's measure m (cents for monetary measures).
  int64_t measure_value(size_t measure, uint64_t row) const {
    return measure_columns_[measure][row];
  }

  size_t num_dimensions() const { return dim_columns_.size(); }
  size_t num_measures() const { return measure_columns_.size(); }

 private:
  SalesDataset(StarSchema schema, std::vector<HierarchyMap> hierarchies,
               std::vector<std::vector<uint32_t>> dim_columns,
               std::vector<std::vector<int64_t>> measure_columns,
               uint64_t sample_rows)
      : schema_(std::move(schema)),
        hierarchies_(std::move(hierarchies)),
        dim_columns_(std::move(dim_columns)),
        measure_columns_(std::move(measure_columns)),
        sample_rows_(sample_rows) {}

  StarSchema schema_;
  std::vector<HierarchyMap> hierarchies_;
  std::vector<std::vector<uint32_t>> dim_columns_;
  std::vector<std::vector<int64_t>> measure_columns_;
  uint64_t sample_rows_;
};

}  // namespace cloudview

