#include "workload/workload.h"

#include "common/logging.h"
#include "common/str_format.h"

namespace cloudview {

const QuerySpec& Workload::query(size_t i) const {
  CV_CHECK(i < queries_.size()) << "query index out of range";
  return queries_[i];
}

uint64_t Workload::TotalFrequency() const {
  uint64_t total = 0;
  for (const QuerySpec& q : queries_) total += q.frequency;
  return total;
}

Workload Workload::Prefix(size_t n) const {
  CV_CHECK(n <= queries_.size()) << "prefix longer than workload";
  return Workload(
      std::vector<QuerySpec>(queries_.begin(), queries_.begin() + n));
}

Result<Workload> MakePaperWorkload(const CubeLattice& lattice) {
  const std::vector<std::pair<std::string, std::string>> level_pairs = {
      {"year", "country"},   {"month", "region"},
      {"day", "department"}, {"year", "department"},
      {"day", "country"},    {"month", "country"},
      {"year", "region"},    {"month", "department"},
      {"day", "region"},     {"year", "ALL"},
  };
  std::vector<QuerySpec> queries;
  queries.reserve(level_pairs.size());
  for (const auto& [time_level, geo_level] : level_pairs) {
    CV_ASSIGN_OR_RETURN(CuboidId id,
                        lattice.NodeByLevels({time_level, geo_level}));
    queries.push_back(QuerySpec{
        StrFormat("profit per (%s, %s)", time_level.c_str(),
                  geo_level.c_str()),
        id, 1});
  }
  return Workload(std::move(queries));
}

}  // namespace cloudview
