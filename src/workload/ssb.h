// SSB-like benchmark: the paper's future-work evaluation target
// ("a full-fledged database or data warehouse benchmark, such as TPC-E
// or the Star Schema Benchmark").
//
// This module provides a Star-Schema-Benchmark-flavoured 4-dimensional
// warehouse — Date, Customer geography, Supplier geography, Part — with
// the 13 SSB queries mapped to their group-by cuboids (cloudview models
// roll-up granularity, not filter predicates; see DESIGN.md). It
// exercises the >2-dimension key codec and a 256-cuboid lattice.

#pragma once

#include <cstdint>

#include "catalog/lattice.h"
#include "catalog/schema.h"
#include "common/data_size.h"
#include "common/result.h"
#include "engine/sales_dataset.h"
#include "workload/workload.h"

namespace cloudview {

/// \brief Shape of the SSB-like warehouse. Defaults approximate scale
/// factor 10 cardinalities with the simplified 360-day calendar.
struct SsbConfig {
  /// Date: day -> month -> year.
  uint32_t years = 7;
  uint32_t months_per_year = 12;
  uint32_t days_per_month = 30;

  /// Customer and supplier geography: city -> nation -> region.
  uint32_t regions = 5;
  uint32_t nations_per_region = 5;
  uint32_t cities_per_nation = 10;

  /// Part: brand -> category -> manufacturer.
  uint32_t manufacturers = 5;
  uint32_t categories_per_manufacturer = 5;
  uint32_t brands_per_category = 40;

  /// Logical lineorder size (SF10's lineorder is ~6 GB of raw text).
  DataSize logical_size = DataSize::FromGB(6);
  int64_t bytes_per_fact_row = 100;
  int64_t bytes_per_view_row = 48;

  uint64_t sample_rows = 100'000;
  double part_skew = 0.4;
  double customer_skew = 0.3;
  int64_t min_revenue_cents = 100'00;
  int64_t max_revenue_cents = 60'000'00;
  uint64_t seed = 19941201;  // SSB's base TPC-D publication date.

  uint32_t num_days() const { return years * months_per_year * days_per_month; }
  uint32_t num_months() const { return years * months_per_year; }
  uint32_t num_nations() const { return regions * nations_per_region; }
  uint32_t num_cities() const {
    return num_nations() * cities_per_nation;
  }
  uint32_t num_categories() const {
    return manufacturers * categories_per_manufacturer;
  }
  uint32_t num_brands() const {
    return num_categories() * brands_per_category;
  }
  uint64_t logical_rows() const {
    return static_cast<uint64_t>(logical_size.bytes() /
                                 bytes_per_fact_row);
  }
};

/// \brief Lineorder star schema: Date x CustomerGeo x SupplierGeo x Part,
/// measures revenue (SUM) and supplycost (SUM).
Result<StarSchema> MakeSsbSchema(const SsbConfig& config);

/// \brief Synthetic lineorder sample (deterministic in config.seed).
Result<SalesDataset> GenerateSsbDataset(const SsbConfig& config);

/// \brief The 13 SSB queries (flights Q1-Q4) as roll-up cuboids:
///   Q1.1-1.3  revenue by year                 (year, ALL, ALL, ALL)
///   Q2.1      by (year, brand)  at mfgr/category/brand granularity
///   Q3.1-3.4  by (year, customer nation/city x supplier nation/city)
///   Q4.1-4.3  profit by (year, customer region/nation, mfgr/category)
/// One workload entry per SSB query; flights that differ only in filter
/// selectivity share a cuboid but keep separate entries (their
/// frequencies model repeat executions).
Result<Workload> MakeSsbWorkload(const CubeLattice& lattice);

}  // namespace cloudview

