#include "workload/timeline.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "common/str_format.h"

namespace cloudview {

namespace {

/// Scales every frequency by `factor`, rounding to nearest, never below
/// `floor`.
void ScaleFrequencies(Workload& workload, double factor, uint64_t floor) {
  std::vector<QuerySpec> queries = workload.queries();
  for (QuerySpec& q : queries) {
    double scaled = static_cast<double>(q.frequency) * factor;
    uint64_t rounded =
        static_cast<uint64_t>(std::llround(std::max(scaled, 0.0)));
    q.frequency = std::max(rounded, floor);
  }
  workload = Workload(std::move(queries));
}

}  // namespace

Status FrequencyDecayDrift::Apply(const CubeLattice& lattice, Rng& rng,
                                  TimelinePeriod& period) const {
  (void)lattice;
  (void)rng;  // Deterministic model: decay needs no draws.
  if (factor_ <= 0.0 || factor_ > 1.0) {
    return Status::InvalidArgument(
        StrFormat("decay factor %.3f outside (0, 1]", factor_));
  }
  ScaleFrequencies(period.workload, factor_, floor_);
  return Status::OK();
}

Status SeasonalSpikeDrift::Apply(const CubeLattice& lattice, Rng& rng,
                                 TimelinePeriod& period) const {
  (void)lattice;
  (void)rng;  // Deterministic model: the spike schedule needs no draws.
  if (season_length_ == 0) {
    return Status::InvalidArgument("season length must be positive");
  }
  if (amplitude_ < 0.0) {
    return Status::InvalidArgument("spike amplitude must be >= 0");
  }
  if (period.index % season_length_ != phase_ % season_length_) {
    return Status::OK();
  }
  ScaleFrequencies(period.workload, 1.0 + amplitude_, 1);
  return Status::OK();
}

Status QueryChurnDrift::Apply(const CubeLattice& lattice, Rng& rng,
                              TimelinePeriod& period) const {
  if (rate_ < 0.0 || rate_ > 1.0) {
    return Status::InvalidArgument(
        StrFormat("churn rate %.3f outside [0, 1]", rate_));
  }
  // Coarse-to-fine node order, matching workload/generator.cc: the Zipf
  // head sits on the coarse roll-ups analysts mostly ask for.
  std::vector<CuboidId> nodes;
  nodes.reserve(lattice.num_nodes());
  for (CuboidId id = 0; id < lattice.num_nodes(); ++id) {
    if (id == lattice.base_id()) continue;  // Full scans churn nowhere.
    nodes.push_back(id);
  }
  if (nodes.empty()) {
    return Status::InvalidArgument(
        "lattice has no aggregate cuboids to churn to");
  }
  std::stable_sort(nodes.begin(), nodes.end(),
                   [&](CuboidId a, CuboidId b) {
                     return lattice.EstimateRows(a) <
                            lattice.EstimateRows(b);
                   });
  ZipfDistribution dist(nodes.size(), cuboid_skew_);

  std::vector<QuerySpec> queries = period.workload.queries();
  for (QuerySpec& q : queries) {
    if (!rng.Bernoulli(rate_)) continue;
    CuboidId fresh = nodes[dist.Sample(rng)];
    q.target = fresh;
    q.name = StrFormat("profit per %s", lattice.NameOf(fresh).c_str());
    // Frequency is inherited: churn relocates load, it does not add any.
  }
  period.workload = Workload(std::move(queries));
  return Status::OK();
}

Status DatasetGrowthDrift::Apply(const CubeLattice& lattice, Rng& rng,
                                 TimelinePeriod& period) const {
  (void)rng;  // Deterministic model: growth is a fixed fraction.
  if (growth_per_period_ < 0.0) {
    return Status::InvalidArgument("dataset growth must be >= 0");
  }
  DataSize base = lattice.fact_scan_size();
  period.base_growth += DataSize::FromBytes(static_cast<int64_t>(
      static_cast<double>(base.bytes()) * growth_per_period_));
  return Status::OK();
}

Result<WorkloadTimeline> WorkloadTimeline::Generate(
    const CubeLattice& lattice, const Workload& base,
    std::vector<std::unique_ptr<DriftModel>> drift,
    const TimelineOptions& options) {
  if (options.num_periods == 0) {
    return Status::InvalidArgument("timeline needs >= 1 period");
  }
  if (!(options.period_length > Months::Zero())) {
    return Status::InvalidArgument("period length must be positive");
  }
  if (base.empty()) {
    return Status::InvalidArgument("base workload is empty");
  }
  for (const std::unique_ptr<DriftModel>& model : drift) {
    if (model == nullptr) {
      return Status::InvalidArgument("null drift model");
    }
  }

  Rng master(options.seed);
  std::vector<TimelinePeriod> periods;
  periods.reserve(options.num_periods);
  // `carried` accumulates the persistent drift (decay, churn); transient
  // effects (seasonal spikes) apply to the emitted period only.
  Workload carried = base;
  for (size_t p = 0; p < options.num_periods; ++p) {
    // One forked stream per period: adding a drift model changes this
    // period's draws, not every later period's.
    Rng rng = master.Fork();
    TimelinePeriod persistent;
    persistent.index = p;
    persistent.workload = carried;
    for (const std::unique_ptr<DriftModel>& model : drift) {
      if (model->transient()) continue;
      CV_RETURN_IF_ERROR(model->Apply(lattice, rng, persistent));
    }
    carried = persistent.workload;

    TimelinePeriod emitted = persistent;
    for (const std::unique_ptr<DriftModel>& model : drift) {
      if (!model->transient()) continue;
      CV_RETURN_IF_ERROR(model->Apply(lattice, rng, emitted));
    }
    periods.push_back(std::move(emitted));
  }
  return WorkloadTimeline(std::move(periods), options.period_length);
}

const TimelinePeriod& WorkloadTimeline::period(size_t p) const {
  CV_CHECK(p < periods_.size()) << "period index out of range";
  return periods_[p];
}

double WorkloadTimeline::Drift(const Workload& a, const Workload& b) {
  // Ordered maps: the L1 reduction below accumulates doubles in
  // iteration order, and unordered_map order varies across standard
  // libraries — the sum must not (cloudview-lint rule D2).
  std::map<CuboidId, double> share_a;
  std::map<CuboidId, double> share_b;
  double total_a = 0.0;
  double total_b = 0.0;
  for (const QuerySpec& q : a.queries()) {
    total_a += static_cast<double>(q.frequency);
  }
  for (const QuerySpec& q : b.queries()) {
    total_b += static_cast<double>(q.frequency);
  }
  if (total_a <= 0.0 || total_b <= 0.0) {
    // Both totals empty -> identical (drift 0); exactly one empty ->
    // maximal drift. Spelled as sign tests, not double equality
    // (cloudview-lint rule D3).
    return (total_a <= 0.0 && total_b <= 0.0) ? 0.0 : 1.0;
  }
  for (const QuerySpec& q : a.queries()) {
    share_a[q.target] += static_cast<double>(q.frequency) / total_a;
  }
  for (const QuerySpec& q : b.queries()) {
    share_b[q.target] += static_cast<double>(q.frequency) / total_b;
  }
  // Total-variation distance: half the L1 gap over the union support.
  double l1 = 0.0;
  for (const auto& [cuboid, share] : share_a) {
    auto it = share_b.find(cuboid);
    double other = it == share_b.end() ? 0.0 : it->second;
    l1 += std::abs(share - other);
  }
  for (const auto& [cuboid, share] : share_b) {
    if (share_a.find(cuboid) == share_a.end()) l1 += share;
  }
  return 0.5 * l1;
}

}  // namespace cloudview
