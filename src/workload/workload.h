// Workload: the query mix Q = {Q1..Qm} the cost models price.
//
// Paper Section 6.1: "10 queries that calculate the total profit per day,
// month, year and per country, department, and region" — the 3x3 level
// combinations plus a tenth query ("total profit per year"; the paper
// lists only nine combinations for its ten queries, see DESIGN.md §5.10).
// Experiments use deterministic prefixes of 3, 5 and 10 queries.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/lattice.h"
#include "common/result.h"

namespace cloudview {

/// \brief One workload query: a target cuboid plus how often it runs per
/// billing period.
struct QuerySpec {
  std::string name;
  CuboidId target = 0;
  uint64_t frequency = 1;
};

/// \brief An immutable list of QuerySpecs.
class Workload {
 public:
  Workload() = default;
  explicit Workload(std::vector<QuerySpec> queries)
      : queries_(std::move(queries)) {}

  const std::vector<QuerySpec>& queries() const { return queries_; }
  size_t size() const { return queries_.size(); }
  bool empty() const { return queries_.empty(); }
  const QuerySpec& query(size_t i) const;

  /// \brief Total query executions per period (sum of frequencies).
  uint64_t TotalFrequency() const;

  /// \brief First `n` queries (n <= size()).
  Workload Prefix(size_t n) const;

 private:
  std::vector<QuerySpec> queries_;
};

/// \brief The paper's 10-query workload over a sales lattice, ordered so
/// that Prefix(3) and Prefix(5) give the paper's smaller workloads (the
/// paper does not state which queries its 3/5-query runs used; this
/// order interleaves time and geography levels so the small prefixes mix
/// coarse and fine queries):
///   1 (year, country)   2 (month, region)   3 (day, department)
///   4 (year, department) 5 (day, country)   6 (month, country)
///   7 (year, region)    8 (month, department) 9 (day, region)
///   10 (year, ALL) — "total profit per year".
Result<Workload> MakePaperWorkload(const CubeLattice& lattice);

}  // namespace cloudview

