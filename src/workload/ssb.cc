#include "workload/ssb.h"

#include <utility>
#include <vector>

#include "common/random.h"
#include "common/str_format.h"
#include "engine/hierarchy.h"

namespace cloudview {

namespace {

Status ValidateConfig(const SsbConfig& config) {
  if (config.years == 0 || config.months_per_year == 0 ||
      config.days_per_month == 0) {
    return Status::InvalidArgument("calendar sizes must be positive");
  }
  if (config.regions == 0 || config.nations_per_region == 0 ||
      config.cities_per_nation == 0) {
    return Status::InvalidArgument("geography sizes must be positive");
  }
  if (config.manufacturers == 0 ||
      config.categories_per_manufacturer == 0 ||
      config.brands_per_category == 0) {
    return Status::InvalidArgument("part sizes must be positive");
  }
  if (config.sample_rows == 0) {
    return Status::InvalidArgument("sample_rows must be positive");
  }
  if (config.logical_rows() < config.sample_rows) {
    return Status::InvalidArgument(
        "logical rows smaller than sample rows");
  }
  if (config.min_revenue_cents > config.max_revenue_cents) {
    return Status::InvalidArgument("revenue range is empty");
  }
  return Status::OK();
}

}  // namespace

Result<StarSchema> MakeSsbSchema(const SsbConfig& config) {
  CV_RETURN_IF_ERROR(ValidateConfig(config));
  CV_ASSIGN_OR_RETURN(
      Dimension date,
      Dimension::Create("Date", {{"day", config.num_days()},
                                 {"month", config.num_months()},
                                 {"year", config.years}}));
  CV_ASSIGN_OR_RETURN(
      Dimension customer,
      Dimension::Create("Customer", {{"city", config.num_cities()},
                                     {"nation", config.num_nations()},
                                     {"region", config.regions}}));
  CV_ASSIGN_OR_RETURN(
      Dimension supplier,
      Dimension::Create("Supplier", {{"city", config.num_cities()},
                                     {"nation", config.num_nations()},
                                     {"region", config.regions}}));
  CV_ASSIGN_OR_RETURN(
      Dimension part,
      Dimension::Create("Part",
                        {{"brand", config.num_brands()},
                         {"category", config.num_categories()},
                         {"mfgr", config.manufacturers}}));
  PhysicalStats stats;
  stats.fact_rows = config.logical_rows();
  stats.bytes_per_fact_row = config.bytes_per_fact_row;
  stats.bytes_per_view_row = config.bytes_per_view_row;
  return StarSchema::Create(
      "lineorder",
      {std::move(date), std::move(customer), std::move(supplier),
       std::move(part)},
      {Measure{"revenue", AggFn::kSum}, Measure{"supplycost", AggFn::kSum}},
      stats);
}

Result<SalesDataset> GenerateSsbDataset(const SsbConfig& config) {
  CV_ASSIGN_OR_RETURN(StarSchema schema, MakeSsbSchema(config));

  std::vector<HierarchyMap> hierarchies;
  hierarchies.reserve(schema.num_dimensions());
  for (size_t d = 0; d < schema.num_dimensions(); ++d) {
    hierarchies.push_back(HierarchyMap::Uniform(schema.dimension(d)));
  }

  Rng rng(config.seed);
  ZipfDistribution part_dist(config.num_brands(), config.part_skew);
  ZipfDistribution customer_dist(config.num_cities(),
                                 config.customer_skew);

  uint64_t rows = config.sample_rows;
  std::vector<uint32_t> day_col(rows);
  std::vector<uint32_t> customer_col(rows);
  std::vector<uint32_t> supplier_col(rows);
  std::vector<uint32_t> part_col(rows);
  std::vector<int64_t> revenue_col(rows);
  std::vector<int64_t> supplycost_col(rows);
  for (uint64_t r = 0; r < rows; ++r) {
    day_col[r] = static_cast<uint32_t>(rng.Uniform(config.num_days()));
    customer_col[r] = static_cast<uint32_t>(
        (customer_dist.Sample(rng) * 2654435761ULL) %
        config.num_cities());
    supplier_col[r] =
        static_cast<uint32_t>(rng.Uniform(config.num_cities()));
    part_col[r] = static_cast<uint32_t>(
        (part_dist.Sample(rng) * 2654435761ULL) % config.num_brands());
    revenue_col[r] = rng.UniformInt(config.min_revenue_cents,
                                    config.max_revenue_cents);
    // Supply cost runs at roughly 60% of revenue with +-10% noise.
    supplycost_col[r] =
        revenue_col[r] * rng.UniformInt(50, 70) / 100;
  }

  return SalesDataset::Create(
      std::move(schema), std::move(hierarchies),
      {std::move(day_col), std::move(customer_col),
       std::move(supplier_col), std::move(part_col)},
      {std::move(revenue_col), std::move(supplycost_col)});
}

Result<Workload> MakeSsbWorkload(const CubeLattice& lattice) {
  // One entry per SSB query; the cuboid covers the query's group-by
  // columns plus its filter columns at filter granularity, so a
  // materialized view at that cuboid can answer the filtered query.
  struct SsbQuery {
    const char* name;
    std::vector<std::string> levels;  // Date, Customer, Supplier, Part.
  };
  const std::vector<SsbQuery> queries = {
      {"Q1.1 revenue, one year", {"year", "ALL", "ALL", "ALL"}},
      {"Q1.2 revenue, one month", {"month", "ALL", "ALL", "ALL"}},
      {"Q1.3 revenue, one week", {"day", "ALL", "ALL", "ALL"}},
      {"Q2.1 by (year, brand), category filter",
       {"year", "ALL", "region", "brand"}},
      {"Q2.2 by (year, brand), brand range",
       {"year", "ALL", "region", "brand"}},
      {"Q2.3 by (year, brand), single brand",
       {"year", "ALL", "region", "brand"}},
      {"Q3.1 by (year, c_nation, s_nation)",
       {"year", "nation", "nation", "ALL"}},
      {"Q3.2 by (year, c_city, s_city)",
       {"year", "city", "city", "ALL"}},
      {"Q3.3 by (year, c_city, s_city), city pair",
       {"year", "city", "city", "ALL"}},
      {"Q3.4 by (month, c_city, s_city)",
       {"month", "city", "city", "ALL"}},
      {"Q4.1 profit by (year, c_nation), mfgr filter",
       {"year", "nation", "region", "mfgr"}},
      {"Q4.2 profit by (year, s_nation, category)",
       {"year", "region", "nation", "category"}},
      {"Q4.3 profit by (year, s_city, brand)",
       {"year", "nation", "city", "brand"}},
  };
  std::vector<QuerySpec> specs;
  specs.reserve(queries.size());
  for (const SsbQuery& q : queries) {
    CV_ASSIGN_OR_RETURN(CuboidId id, lattice.NodeByLevels(q.levels));
    specs.push_back(QuerySpec{q.name, id, 1});
  }
  return Workload(std::move(specs));
}

}  // namespace cloudview
