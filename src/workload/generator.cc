#include "workload/generator.h"

#include <algorithm>
#include <vector>

#include "common/random.h"
#include "common/str_format.h"

namespace cloudview {

Result<Workload> GenerateWorkload(const CubeLattice& lattice,
                                  const WorkloadGenOptions& options) {
  if (options.num_queries == 0) {
    return Status::InvalidArgument("workload needs >= 1 query");
  }
  if (options.min_frequency == 0 ||
      options.min_frequency > options.max_frequency) {
    return Status::InvalidArgument("bad frequency range");
  }
  size_t pool = lattice.num_nodes() - (options.exclude_base ? 1 : 0);
  if (!options.allow_duplicates && options.num_queries > pool) {
    return Status::InvalidArgument(
        StrFormat("cannot draw %zu distinct cuboids from %zu",
                  options.num_queries, pool));
  }

  // Order nodes coarse-to-fine (by estimated rows ascending): analysts ask
  // mostly coarse roll-ups, so the Zipf head sits on the coarse end.
  std::vector<CuboidId> nodes;
  nodes.reserve(lattice.num_nodes());
  for (CuboidId id = 0; id < lattice.num_nodes(); ++id) {
    if (options.exclude_base && id == lattice.base_id()) continue;
    nodes.push_back(id);
  }
  std::stable_sort(nodes.begin(), nodes.end(),
                   [&](CuboidId a, CuboidId b) {
                     return lattice.EstimateRows(a) < lattice.EstimateRows(b);
                   });

  Rng rng(options.seed);
  ZipfDistribution dist(nodes.size(), options.cuboid_skew);
  std::vector<bool> used(nodes.size(), false);
  std::vector<QuerySpec> queries;
  queries.reserve(options.num_queries);
  while (queries.size() < options.num_queries) {
    uint64_t rank = dist.Sample(rng);
    if (!options.allow_duplicates) {
      if (used[rank]) continue;
      used[rank] = true;
    }
    CuboidId id = nodes[rank];
    uint64_t freq = static_cast<uint64_t>(rng.UniformInt(
        static_cast<int64_t>(options.min_frequency),
        static_cast<int64_t>(options.max_frequency)));
    queries.push_back(QuerySpec{
        StrFormat("profit per %s", lattice.NameOf(id).c_str()), id, freq});
  }
  return Workload(std::move(queries));
}

}  // namespace cloudview
