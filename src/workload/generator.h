// Random workload generation: parameterized query mixes beyond the
// paper's fixed ten, for property tests and sensitivity benches.

#pragma once

#include <cstdint>

#include "catalog/lattice.h"
#include "common/result.h"
#include "workload/workload.h"

namespace cloudview {

/// \brief Knobs for random workload synthesis.
struct WorkloadGenOptions {
  /// Number of queries to draw.
  size_t num_queries = 10;
  /// Skew of query popularity across cuboids (Zipf theta over the
  /// lattice's nodes ordered coarse-to-fine; 0 = uniform).
  double cuboid_skew = 0.5;
  /// Frequencies are drawn uniformly in [min_frequency, max_frequency].
  uint64_t min_frequency = 1;
  uint64_t max_frequency = 1;
  /// Exclude the base cuboid (full-table queries) when true.
  bool exclude_base = false;
  /// Allow the same cuboid to appear in several queries when true.
  bool allow_duplicates = true;
  uint64_t seed = 7;
};

/// \brief Draws a random workload over `lattice`.
Result<Workload> GenerateWorkload(const CubeLattice& lattice,
                                  const WorkloadGenOptions& options);

}  // namespace cloudview

