// WorkloadTimeline: the temporal dimension of the cost models.
//
// The paper's billing quantities — storage amortization, monthly
// GB-month rates, pay-as-you-go vs reserved compute — only matter
// because workloads run for months, yet a single Workload freezes one
// period's query mix. A WorkloadTimeline unrolls that mix over a
// horizon of billing periods, mutating it period-by-period through
// composable DriftModels:
//
//   FrequencyDecayDrift — query popularity decays geometrically
//                         (yesterday's dashboard loses viewers);
//   SeasonalSpikeDrift  — a periodic traffic multiplier (quarter-end
//                         reporting, holiday load);
//   QueryChurnDrift     — queries are retired and replaced by fresh
//                         cuboids drawn from the lattice (analysts move
//                         on to new questions);
//   DatasetGrowthDrift  — the base data grows each period (ingest),
//                         inflating the storage timeline.
//
// Generation is eager and deterministic (seeded Rng), so a timeline is
// a reproducible experiment input. The TemporalPlanner
// (core/optimizer/temporal_planner.h) walks it and re-decides the view
// selection as the mix drifts.

#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "catalog/lattice.h"
#include "common/data_size.h"
#include "common/months.h"
#include "common/random.h"
#include "common/result.h"
#include "workload/workload.h"

namespace cloudview {

/// \brief One billing period's slice of the timeline.
struct TimelinePeriod {
  /// Zero-based period index.
  size_t index = 0;
  /// The query mix that runs during this period.
  Workload workload;
  /// Base-data bytes ingested during this period (dataset growth);
  /// lands on the storage timeline at the period boundary.
  DataSize base_growth;
};

/// \brief One composable mutation of the query mix between periods.
///
/// Models are applied in registration order each period: period p's mix
/// starts as a copy of period p-1's (period 0 starts from the base
/// workload) and every model transforms it in place. Implementations
/// must be deterministic given the passed Rng.
class DriftModel {
 public:
  virtual ~DriftModel() = default;

  /// \brief Short label for ledgers and logs, e.g. "churn".
  virtual std::string_view name() const = 0;

  /// \brief Transient models affect only the period they fire in; their
  /// effect is not carried into later periods' starting mixes (seasonal
  /// spikes). Persistent models (decay, churn, growth) compound.
  virtual bool transient() const { return false; }

  /// \brief Transforms `period` in place. `lattice` is the cube the
  /// workload queries; `rng` is the timeline's deterministic stream.
  virtual Status Apply(const CubeLattice& lattice, Rng& rng,
                       TimelinePeriod& period) const = 0;
};

/// \brief Geometric popularity decay: every frequency is scaled by
/// `factor` per period (rounded), never below `floor`.
class FrequencyDecayDrift : public DriftModel {
 public:
  explicit FrequencyDecayDrift(double factor, uint64_t floor = 1)
      : factor_(factor), floor_(floor) {}

  std::string_view name() const override { return "frequency-decay"; }
  Status Apply(const CubeLattice& lattice, Rng& rng,
               TimelinePeriod& period) const override;

 private:
  double factor_;
  uint64_t floor_;
};

/// \brief Periodic load spike: in periods where
/// `index % season_length == phase`, frequencies are scaled by
/// (1 + amplitude). The spike is transient — it does not compound into
/// later periods' mixes.
class SeasonalSpikeDrift : public DriftModel {
 public:
  SeasonalSpikeDrift(size_t season_length, size_t phase, double amplitude)
      : season_length_(season_length), phase_(phase),
        amplitude_(amplitude) {}

  std::string_view name() const override { return "seasonal-spike"; }
  bool transient() const override { return true; }
  Status Apply(const CubeLattice& lattice, Rng& rng,
               TimelinePeriod& period) const override;

 private:
  size_t season_length_;
  size_t phase_;
  double amplitude_;
};

/// \brief Query churn: each query is independently retired with
/// probability `rate` per period and replaced by a query on a cuboid
/// drawn Zipf-skewed from the lattice (coarse roll-ups favoured, like
/// workload/generator.h). The replacement inherits the retired query's
/// frequency, so churn moves *where* the load sits, not how much there
/// is.
class QueryChurnDrift : public DriftModel {
 public:
  explicit QueryChurnDrift(double rate, double cuboid_skew = 0.5)
      : rate_(rate), cuboid_skew_(cuboid_skew) {}

  std::string_view name() const override { return "churn"; }
  Status Apply(const CubeLattice& lattice, Rng& rng,
               TimelinePeriod& period) const override;

 private:
  double rate_;
  double cuboid_skew_;
};

/// \brief Dataset growth: every period ingests
/// `growth_per_period` x (the lattice's base fact size) bytes. Purely a
/// storage/ingress effect — the simulated engine keeps its calibrated
/// scan times (see DESIGN.md §8).
class DatasetGrowthDrift : public DriftModel {
 public:
  explicit DatasetGrowthDrift(double growth_per_period)
      : growth_per_period_(growth_per_period) {}

  std::string_view name() const override { return "dataset-growth"; }
  Status Apply(const CubeLattice& lattice, Rng& rng,
               TimelinePeriod& period) const override;

 private:
  double growth_per_period_;
};

/// \brief Horizon shape and determinism knobs.
struct TimelineOptions {
  /// Number of billing periods to unroll.
  size_t num_periods = 12;
  /// Length of one period on the storage/billing clock.
  Months period_length = Months::FromMonths(1);
  /// Seed of the timeline's Rng (forked per period, so inserting a
  /// drift model does not reshuffle later periods' draws).
  uint64_t seed = 7;
};

/// \brief An immutable sequence of per-period query mixes.
class WorkloadTimeline {
 public:
  /// \brief Unrolls `base` over `options.num_periods` periods, applying
  /// every model in `drift` (in order) at each period boundary. The
  /// lattice must outlive nothing — periods copy their workloads.
  static Result<WorkloadTimeline> Generate(
      const CubeLattice& lattice, const Workload& base,
      std::vector<std::unique_ptr<DriftModel>> drift,
      const TimelineOptions& options);

  size_t num_periods() const { return periods_.size(); }
  Months period_length() const { return period_length_; }
  /// \brief Total horizon on the billing clock.
  Months horizon() const { return PeriodStart(periods_.size()); }
  /// \brief Month at which period `p` begins (p == num_periods() gives
  /// the horizon end).
  Months PeriodStart(size_t p) const {
    return Months::FromMilli(static_cast<int64_t>(p) *
                             period_length_.milli());
  }
  const TimelinePeriod& period(size_t p) const;
  const std::vector<TimelinePeriod>& periods() const { return periods_; }

  /// \brief Workload-mix distance in [0, 1]: total-variation distance
  /// between the per-cuboid frequency shares of `a` and `b` — the
  /// signal re-select-on-drift policies watch. 0 means identical mixes
  /// (up to query naming); 1 means disjoint cuboid sets.
  static double Drift(const Workload& a, const Workload& b);

 private:
  WorkloadTimeline(std::vector<TimelinePeriod> periods,
                   Months period_length)
      : periods_(std::move(periods)), period_length_(period_length) {}

  std::vector<TimelinePeriod> periods_;
  Months period_length_;
};

}  // namespace cloudview

